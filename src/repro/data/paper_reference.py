"""Published numbers from the paper, used by benches and EXPERIMENTS.md.

``TABLE4_BITS_PER_VALUE`` transcribes Table 4 (compression ratio in bits
per value, all schemes, all 30 datasets).  The reproduction never *fits*
to these numbers — they are reference points the benchmark reports print
next to our measurements so the shape claims can be checked at a glance.

``TABLE5_TUPLES_PER_CYCLE`` transcribes Table 5 (average speed on Ice
Lake), and ``TABLE7_ML_BITS`` transcribes Table 7 (32-bit ML weights).
"""

from __future__ import annotations

#: Table 4, columns: gorilla, chimp, chimp128, patas, pde, elf, alp,
#: lwc+alp, zstd.  The ``cascade`` entry notes which front encoding the
#: paper's LWC+ALP column used ("dict", "rle" or None).
TABLE4_BITS_PER_VALUE: dict[str, dict[str, float | str | None]] = {
    "Air-Pressure": {"gorilla": 24.7, "chimp": 23.0, "chimp128": 19.3, "patas": 27.9, "pde": 30.2, "elf": 10.5, "alp": 16.5, "lwc+alp": 11.9, "zstd": 8.7, "cascade": "dict"},
    "Basel-Temp": {"gorilla": 61.6, "chimp": 54.1, "chimp128": 31.2, "patas": 36.5, "pde": 39.3, "elf": 32.9, "alp": 29.8, "lwc+alp": 13.8, "zstd": 18.3, "cascade": "dict"},
    "Basel-Wind": {"gorilla": 63.2, "chimp": 54.7, "chimp128": 38.4, "patas": 48.9, "pde": 35.1, "elf": 34.5, "alp": 29.8, "lwc+alp": 10.3, "zstd": 14.6, "cascade": "dict"},
    "Bird-Mig": {"gorilla": 48.7, "chimp": 41.9, "chimp128": 26.3, "patas": 35.9, "pde": 35.2, "elf": 19.9, "alp": 20.1, "lwc+alp": 19.8, "zstd": 21.0, "cascade": "dict"},
    "Btc-Price": {"gorilla": 51.5, "chimp": 48.2, "chimp128": 45.1, "patas": 57.1, "pde": 44.1, "elf": 31.9, "alp": 26.4, "lwc+alp": 26.4, "zstd": 49.9, "cascade": None},
    "City-Temp": {"gorilla": 59.7, "chimp": 46.2, "chimp128": 23.0, "patas": 24.2, "pde": 31.5, "elf": 15.1, "alp": 10.7, "lwc+alp": 10.0, "zstd": 16.2, "cascade": "dict"},
    "Dew-Temp": {"gorilla": 56.2, "chimp": 51.8, "chimp128": 32.6, "patas": 39.0, "pde": 29.5, "elf": 17.7, "alp": 13.5, "lwc+alp": 13.5, "zstd": 20.9, "cascade": None},
    "Bio-Temp": {"gorilla": 51.9, "chimp": 46.3, "chimp128": 18.9, "patas": 22.9, "pde": 23.4, "elf": 13.0, "alp": 10.7, "lwc+alp": 10.7, "zstd": 14.5, "cascade": None},
    "PM10-dust": {"gorilla": 27.7, "chimp": 24.4, "chimp128": 13.7, "patas": 19.9, "pde": 12.9, "elf": 7.1, "alp": 8.2, "lwc+alp": 8.2, "zstd": 6.9, "cascade": None},
    "Stocks-DE": {"gorilla": 46.9, "chimp": 42.9, "chimp128": 13.6, "patas": 20.8, "pde": 25.1, "elf": 12.3, "alp": 11.0, "lwc+alp": 11.0, "zstd": 9.4, "cascade": None},
    "Stocks-UK": {"gorilla": 35.6, "chimp": 31.3, "chimp128": 16.8, "patas": 21.5, "pde": 26.1, "elf": 11.0, "alp": 12.7, "lwc+alp": 12.7, "zstd": 10.7, "cascade": None},
    "Stocks-USA": {"gorilla": 37.7, "chimp": 35.0, "chimp128": 12.2, "patas": 19.2, "pde": 26.1, "elf": 8.8, "alp": 7.9, "lwc+alp": 7.9, "zstd": 7.8, "cascade": None},
    "Wind-dir": {"gorilla": 59.4, "chimp": 53.9, "chimp128": 27.8, "patas": 28.2, "pde": 31.5, "elf": 22.1, "alp": 15.9, "lwc+alp": 15.9, "zstd": 24.7, "cascade": None},
    "Arade/4": {"gorilla": 58.1, "chimp": 55.6, "chimp128": 49.0, "patas": 59.1, "pde": 33.7, "elf": 30.8, "alp": 24.9, "lwc+alp": 24.9, "zstd": 33.8, "cascade": None},
    "Blockchain": {"gorilla": 65.5, "chimp": 58.3, "chimp128": 53.2, "patas": 62.6, "pde": 39.1, "elf": 39.2, "alp": 36.2, "lwc+alp": 36.2, "zstd": 38.3, "cascade": None},
    "CMS/1": {"gorilla": 37.8, "chimp": 34.8, "chimp128": 28.2, "patas": 36.8, "pde": 40.7, "elf": 25.4, "alp": 35.7, "lwc+alp": 33.1, "zstd": 24.5, "cascade": "dict"},
    "CMS/25": {"gorilla": 65.4, "chimp": 59.5, "chimp128": 57.2, "patas": 70.1, "pde": 63.9, "elf": 48.6, "alp": 41.1, "lwc+alp": 27.1, "zstd": 56.5, "cascade": "rle"},
    "CMS/9": {"gorilla": 17.1, "chimp": 18.7, "chimp128": 25.7, "patas": 26.0, "pde": 9.7, "elf": 15.8, "alp": 11.7, "lwc+alp": 11.3, "zstd": 14.7, "cascade": "dict"},
    "Food-prices": {"gorilla": 40.8, "chimp": 28.0, "chimp128": 24.7, "patas": 28.3, "pde": 25.4, "elf": 16.8, "alp": 23.7, "lwc+alp": 23.7, "zstd": 16.6, "cascade": None},
    "Gov/10": {"gorilla": 58.1, "chimp": 45.7, "chimp128": 34.2, "patas": 35.9, "pde": 35.6, "elf": 30.1, "alp": 31.0, "lwc+alp": 31.0, "zstd": 27.4, "cascade": None},
    "Gov/26": {"gorilla": 2.4, "chimp": 2.3, "chimp128": 9.3, "patas": 16.2, "pde": 0.9, "elf": 4.2, "alp": 0.4, "lwc+alp": 0.2, "zstd": 0.2, "cascade": "rle"},
    "Gov/30": {"gorilla": 10.3, "chimp": 8.9, "chimp128": 12.9, "patas": 19.3, "pde": 8.2, "elf": 8.0, "alp": 7.5, "lwc+alp": 6.2, "zstd": 4.2, "cascade": "rle"},
    "Gov/31": {"gorilla": 5.7, "chimp": 5.0, "chimp128": 10.4, "patas": 17.1, "pde": 2.8, "elf": 5.4, "alp": 3.1, "lwc+alp": 2.5, "zstd": 1.5, "cascade": "rle"},
    "Gov/40": {"gorilla": 2.7, "chimp": 2.6, "chimp128": 9.4, "patas": 16.4, "pde": 1.2, "elf": 4.3, "alp": 0.8, "lwc+alp": 0.5, "zstd": 0.4, "cascade": "rle"},
    "Medicare/1": {"gorilla": 45.9, "chimp": 42.7, "chimp128": 32.3, "patas": 39.9, "pde": 42.8, "elf": 29.9, "alp": 39.4, "lwc+alp": 35.7, "zstd": 28.7, "cascade": "dict"},
    "Medicare/9": {"gorilla": 17.9, "chimp": 19.1, "chimp128": 26.0, "patas": 26.3, "pde": 10.2, "elf": 16.0, "alp": 12.3, "lwc+alp": 11.3, "zstd": 14.9, "cascade": "dict"},
    "NYC/29": {"gorilla": 30.8, "chimp": 29.6, "chimp128": 28.7, "patas": 38.8, "pde": 69.3, "elf": 32.6, "alp": 40.4, "lwc+alp": 24.7, "zstd": 20.5, "cascade": "dict"},
    "POI-lat": {"gorilla": 66.0, "chimp": 57.7, "chimp128": 57.5, "patas": 71.7, "pde": 69.3, "elf": 62.5, "alp": 55.5, "lwc+alp": 55.5, "zstd": 48.1, "cascade": None},
    "POI-lon": {"gorilla": 66.1, "chimp": 63.4, "chimp128": 63.1, "patas": 75.9, "pde": 69.2, "elf": 68.7, "alp": 56.4, "lwc+alp": 56.4, "zstd": 53.1, "cascade": None},
    "SD-bench": {"gorilla": 51.1, "chimp": 45.7, "chimp128": 19.2, "patas": 23.0, "pde": 30.6, "elf": 18.4, "alp": 16.2, "lwc+alp": 12.0, "zstd": 11.8, "cascade": "dict"},
}

#: Table 5: average tuples per CPU cycle on Ice Lake.
TABLE5_TUPLES_PER_CYCLE: dict[str, dict[str, float]] = {
    "alp": {"compress": 0.487, "decompress": 2.609},
    "chimp": {"compress": 0.042, "decompress": 0.039},
    "chimp128": {"compress": 0.040, "decompress": 0.040},
    "elf": {"compress": 0.010, "decompress": 0.012},
    "gorilla": {"compress": 0.052, "decompress": 0.047},
    "pde": {"compress": 0.002, "decompress": 0.387},
    "patas": {"compress": 0.060, "decompress": 0.157},
    "zstd": {"compress": 0.035, "decompress": 0.101},
}

#: Table 7: bits/value on 32-bit ML weights.
TABLE7_ML_BITS: dict[str, dict[str, float]] = {
    "Dino-Vitb16": {"gorilla": 34.1, "chimp": 33.4, "chimp128": 33.4, "patas": 45.8, "alprd": 28.3, "zstd": 29.7},
    "GPT2": {"gorilla": 34.1, "chimp": 33.5, "chimp128": 33.5, "patas": 45.6, "alprd": 27.7, "zstd": 29.7},
    "Grammarly-lg": {"gorilla": 34.1, "chimp": 33.4, "chimp128": 33.4, "patas": 45.5, "alprd": 27.7, "zstd": 29.6},
    "W2V-Tweets": {"gorilla": 34.1, "chimp": 33.3, "chimp128": 33.3, "patas": 45.5, "alprd": 28.8, "zstd": 29.8},
}

#: Paper averages of Table 4 (ALL AVG. row) for quick sanity checks.
TABLE4_ALL_AVG: dict[str, float] = {
    "gorilla": 42.2,
    "chimp": 37.7,
    "chimp128": 28.7,
    "patas": 35.5,
    "pde": 31.4,
    "elf": 23.1,
    "alp": 21.7,
    "lwc+alp": 18.8,
    "zstd": 20.6,
}
