"""Tests for the Table 2 dataset metrics."""

import math

import numpy as np
import pytest

from repro.analysis.metrics import (
    best_exponent_success,
    compute_metrics,
    penc_pdec_roundtrip,
    per_value_success_rate,
    per_vector_best_exponent_success,
)
from repro.data import get_dataset


class TestPencPdec:
    def test_paper_failure_case(self):
        # Section 2.5: 8.0605 cannot be recovered with e = 4 (its visible
        # precision) ...
        ok = penc_pdec_roundtrip(np.array([8.0605]), np.array([4]))
        assert not ok[0]

    def test_high_exponent_succeeds(self):
        # ... but e = 14 recovers it.
        ok = penc_pdec_roundtrip(np.array([8.0605]), np.array([14]))
        assert ok[0]

    def test_integers_succeed_at_zero(self):
        ok = penc_pdec_roundtrip(np.array([5.0, -3.0]), np.array([0, 0]))
        assert ok.all()

    def test_real_doubles_mostly_fail(self):
        # Values with full random mantissas (POI-style) cannot reach a
        # high success rate at any exponent — the §2.5 story.
        rng = np.random.default_rng(42)
        values = rng.uniform(0, 1, 2048) * math.pi
        for e in range(18):
            ok = penc_pdec_roundtrip(values, np.full(values.size, e))
            assert ok.mean() < 0.9, f"e={e} unexpectedly succeeded"

    def test_per_value_rate_below_best_exponent_rate(self):
        # The paper's core §2.5 finding: visible-precision exponents are
        # *worse* than one high exponent (C11 < C12 on most datasets).
        rng = np.random.default_rng(0)
        values = np.round(rng.uniform(0, 100, 4096), 4)
        per_value = per_value_success_rate(values)
        _, best = best_exponent_success(values)
        assert best >= per_value

    def test_best_exponent_is_high(self):
        # Table 2 C12: e = 14 dominates on decimal-origin data.
        rng = np.random.default_rng(1)
        values = np.round(rng.uniform(0, 100, 4096), 4)
        e, rate = best_exponent_success(values)
        assert e >= 10
        assert rate > 0.95

    def test_per_vector_at_least_per_dataset(self):
        rng = np.random.default_rng(2)
        parts = [np.round(rng.uniform(0, 100, 1024), p) for p in (1, 6)]
        values = np.concatenate(parts)
        _, dataset_rate = best_exponent_success(values)
        vector_rate = per_vector_best_exponent_success(values)
        assert vector_rate >= dataset_rate - 1e-12


class TestComputeMetrics:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            compute_metrics(np.empty(0))

    def test_one_decimal_dataset(self):
        values = get_dataset("City-Temp", n=8192)
        m = compute_metrics(values)
        assert m.precision_max <= 1
        assert m.precision_avg <= 1.0
        assert m.success_per_vector > 0.9

    def test_poi_metrics_match_paper_shape(self):
        values = get_dataset("POI-lat", n=8192)
        m = compute_metrics(values)
        # Table 2: POI has the lowest XOR zero counts and high precision.
        assert m.precision_avg > 14
        assert m.xor_trailing_zeros_avg < 5
        assert m.success_best_exponent < 0.9

    def test_duplicate_heavy_dataset(self):
        values = get_dataset("PM10-dust", n=8192)
        m = compute_metrics(values)
        assert m.non_unique_fraction > 0.7

    def test_exponent_stats_near_bias(self):
        values = get_dataset("Stocks-USA", n=8192)
        m = compute_metrics(values)
        # Values ~146 -> biased exponent ~1030 with tiny deviation.
        assert 1024 < m.exponent_avg < 1035
        assert m.exponent_std_per_vector < 3

    def test_sampling_limit_applies(self):
        values = get_dataset("City-Temp", n=120_000)
        m = compute_metrics(values, sample_limit=4096)
        assert m.count == 4096

    def test_counts_dataset_success_is_total(self):
        values = get_dataset("CMS/9", n=8192)
        m = compute_metrics(values)
        # Table 2: CMS/9 hits 100% success (pure integers).
        assert m.success_best_exponent > 0.999
        assert m.precision_avg == 0.0

    def test_gov26_low_exponent_average(self):
        values = get_dataset("Gov/26", n=32_768)
        m = compute_metrics(values)
        # Mostly zeros -> biased exponent average near 0 (Table 2 C9: 4.6).
        assert m.exponent_avg < 100
        assert m.xor_leading_zeros_avg > 40
