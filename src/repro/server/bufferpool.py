"""A size-bucketed pool of reusable float64 decode buffers.

Steady-state serving decodes the same column shapes over and over: scan
requests need a full-column target, cache fills need a row-group
target, and both sizes are quantized by the column layout.  Allocating
(and zeroing, and faulting in) a fresh multi-megabyte array per request
is pure overhead — the FCBench observation that allocation, not the
codec, dominates served reads.  This pool keeps released buffers on
per-size free lists so a warm server's ``scan``/``sum`` traffic
performs **zero large allocations per request** (the response frame's
serialized copy is the one remaining allocation; see
``docs/PERFORMANCE.md``).

Ownership protocol — exactly one of the two per acquire:

- :meth:`release` — the request is done with the buffer; it returns to
  its free list (subject to the byte budget) for the next request.
- :meth:`transfer` — ownership moved somewhere long-lived (the
  :class:`~repro.server.cache.DecodedVectorCache` keeps fill targets
  resident and read-only).  The pool forgets the buffer: recycling an
  array the cache may still be sharing with an in-flight response
  would corrupt that response.

Thread-safety: all bookkeeping is lock-protected; ``acquire`` misses
allocate outside the lock.  Counters mirror into :mod:`repro.obs` when
enabled (``pool.hits`` / ``pool.misses``, gauges ``pool.outstanding`` /
``pool.bytes``) and are always available via :meth:`stats`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import obs
from repro.concurrency import create_lock

#: Default budget of *idle* bytes kept on free lists (outstanding
#: buffers are the workload's, not the pool's).  64 MiB holds ~80 free
#: full-column buffers at the CI serve shape (100k values); size it to
#: ``max_inflight x largest served column`` to make steady state
#: allocation-free (see docs/PERFORMANCE.md, "pool sizing").
DEFAULT_POOL_BYTES = 64 * 1024 * 1024

#: Free buffers kept per size bucket; more than the worker-pool width
#: can ever have in flight at once buys nothing.
MAX_PER_BUCKET = 32


@dataclass(frozen=True)
class PoolStats:
    """A point-in-time snapshot of the pool counters."""

    hits: int
    misses: int
    outstanding: int
    free_buffers: int
    free_bytes: int
    byte_budget: int

    @property
    def hit_rate(self) -> float:
        """Hits over acquires (0.0 when nothing was acquired)."""
        acquires = self.hits + self.misses
        return self.hits / acquires if acquires else 0.0

    def as_dict(self) -> dict[str, object]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "outstanding": self.outstanding,
            "free_buffers": self.free_buffers,
            "free_bytes": self.free_bytes,
            "byte_budget": self.byte_budget,
            "hit_rate": self.hit_rate,
        }


class BufferPool:
    """Thread-safe free lists of float64 buffers, bucketed by size."""

    def __init__(self, byte_budget: int = DEFAULT_POOL_BYTES) -> None:
        if byte_budget < 0:
            raise ValueError(f"byte_budget must be >= 0, got {byte_budget}")
        self._budget = byte_budget
        self._lock = create_lock("BufferPool._lock")
        #: value count -> stack of idle buffers of exactly that size.
        self._free: dict[int, list[np.ndarray]] = {}
        self._free_bytes = 0
        self._outstanding = 0
        self._hits = 0
        self._misses = 0

    @property
    def byte_budget(self) -> int:
        """The configured idle-byte budget."""
        return self._budget

    def acquire(self, count: int) -> np.ndarray:
        """A writable C-contiguous float64 array of exactly ``count``.

        Contents are unspecified (recycled buffers hold stale values);
        callers decode into the whole buffer before reading it.
        """
        if count < 0:
            raise ValueError(f"count must be >= 0, got {count}")
        with self._lock:
            bucket = self._free.get(count)
            if bucket:
                buf = bucket.pop()
                self._free_bytes -= buf.nbytes
                self._hits += 1
                self._outstanding += 1
                obs.counter_add("pool.hits")
                obs.gauge_set("pool.outstanding", self._outstanding)
                obs.gauge_set("pool.bytes", self._free_bytes)
                return buf
            self._misses += 1
            self._outstanding += 1
            obs.counter_add("pool.misses")
            obs.gauge_set("pool.outstanding", self._outstanding)
        # Allocate outside the lock: np.empty of a large bucket can be
        # slower than every piece of bookkeeping above combined.
        return np.empty(count, dtype=np.float64)

    def release(self, buffer: np.ndarray) -> None:
        """Return an acquired buffer to its free list for reuse.

        Only call when nothing else can still be reading the buffer —
        the next ``acquire`` will scribble over it.  Buffers that would
        push idle bytes past the budget (or overfill their bucket) are
        dropped for the garbage collector instead.
        """
        self._check_returnable(buffer)
        size = int(buffer.nbytes)
        with self._lock:
            self._outstanding = max(0, self._outstanding - 1)
            bucket = self._free.setdefault(buffer.size, [])
            if (
                self._free_bytes + size <= self._budget
                and len(bucket) < MAX_PER_BUCKET
            ):
                bucket.append(buffer)
                self._free_bytes += size
            obs.gauge_set("pool.outstanding", self._outstanding)
            obs.gauge_set("pool.bytes", self._free_bytes)

    def transfer(self, buffer: np.ndarray) -> None:
        """Forget an acquired buffer whose ownership moved elsewhere.

        Used when a fill target becomes a long-lived, shared resident
        (e.g. a ``DecodedVectorCache`` entry): the buffer must never be
        recycled, but the outstanding gauge should stop counting it as
        in-flight request state.
        """
        with self._lock:
            self._outstanding = max(0, self._outstanding - 1)
            obs.gauge_set("pool.outstanding", self._outstanding)

    def _check_returnable(self, buffer: np.ndarray) -> None:
        if (
            not isinstance(buffer, np.ndarray)
            or buffer.dtype != np.float64
            or buffer.ndim != 1
            or not buffer.flags.c_contiguous
            or not buffer.flags.writeable
            or buffer.base is not None
        ):
            raise ValueError(
                "release() takes a buffer the pool could hand out again: "
                "a writable, C-contiguous, base-owning 1-D float64 array"
            )

    def clear(self) -> None:
        """Drop every idle buffer (counters are kept)."""
        with self._lock:
            self._free.clear()
            self._free_bytes = 0
            obs.gauge_set("pool.bytes", 0)

    def stats(self) -> PoolStats:
        """A consistent snapshot of the counters."""
        with self._lock:
            return PoolStats(
                hits=self._hits,
                misses=self._misses,
                outstanding=self._outstanding,
                free_buffers=sum(len(b) for b in self._free.values()),
                free_bytes=self._free_bytes,
                byte_budget=self._budget,
            )
