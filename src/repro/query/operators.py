"""Vector-at-a-time physical operators (pull-based, Tectorwise style).

Operators form a pull pipeline: each ``next_vector()`` call returns the
next 1024-value float64 vector (possibly shorter at the tail) or ``None``
at end of stream.  Work inside an operator is numpy-vectorized over the
vector — the defining property of the execution model the paper targets.
"""

from __future__ import annotations

from typing import Iterator, Optional

import numpy as np

from repro.query.sources import ColumnSource


class Operator:
    """Base class of the pull pipeline."""

    def next_vector(self) -> Optional[np.ndarray]:
        """Return the next vector, or None when exhausted."""
        raise NotImplementedError

    def __iter__(self) -> Iterator[np.ndarray]:
        while True:
            vector = self.next_vector()
            if vector is None:
                return
            yield vector


class ScanOperator(Operator):
    """Leaf operator: pulls vectors out of a column source."""

    def __init__(self, source: ColumnSource) -> None:
        self._iter = source.vectors()

    def next_vector(self) -> Optional[np.ndarray]:
        return next(self._iter, None)


class FilterOperator(Operator):
    """Range selection: keeps values in [low, high].

    Emits compacted vectors (selection applied), like Tectorwise's
    selection-vector approach after compaction.  Vectors with no
    qualifying values are dropped, so downstream operators do less work —
    combined with zone maps this is the predicate push-down story.
    """

    def __init__(self, child: Operator, low: float, high: float) -> None:
        self._child = child
        self._low = low
        self._high = high

    def next_vector(self) -> Optional[np.ndarray]:
        while True:
            vector = self._child.next_vector()
            if vector is None:
                return None
            mask = (vector >= self._low) & (vector <= self._high)
            if mask.any():
                return vector[mask]


class AggregateOperator(Operator):
    """Terminal aggregate over the child stream: SUM/COUNT/MIN/MAX.

    ``result()`` drains the child and returns the aggregate value.
    """

    _INITIAL = {
        "sum": 0.0,
        "count": 0.0,
        "min": float("inf"),
        "max": float("-inf"),
    }

    def __init__(self, child: Operator, kind: str = "sum") -> None:
        if kind not in self._INITIAL:
            raise ValueError(f"unknown aggregate {kind!r}")
        self._child = child
        self._kind = kind

    def next_vector(self) -> Optional[np.ndarray]:
        # Aggregates are sinks; expose the scalar via result() instead.
        return None

    def result(self) -> float:
        value = self._INITIAL[self._kind]
        for vector in self._child:
            if self._kind == "sum":
                value += float(vector.sum())
            elif self._kind == "count":
                value += vector.size
            elif self._kind == "min" and vector.size:
                value = min(value, float(vector.min()))
            elif self._kind == "max" and vector.size:
                value = max(value, float(vector.max()))
        return value
