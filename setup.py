"""Legacy setup shim.

The offline build environment lacks the ``wheel`` package, which the
PEP 517 editable path requires; this shim lets ``pip install -e .`` use
the legacy ``setup.py develop`` path.  All metadata lives in
``setup.cfg``.
"""

from setuptools import setup

setup()
