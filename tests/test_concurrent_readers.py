"""One ColumnFileReader, many threads, a corrupted file.

The serving layer hammers a single shared reader from a worker pool, so
the reader's integrity bookkeeping must be thread-safe: every thread
sees the same deterministic values, and the quarantine observability
counters fire exactly once per bad row-group no matter how many threads
race into it (first-insert-wins under the reader's integrity lock).
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro import api, obs
from repro.server.cache import DecodedVectorCache
from repro.storage.columnfile import ColumnFileReader
from repro.storage.errors import CorruptRowGroupError

VECTOR_SIZE = 128
ROWGROUP_VECTORS = 4
ROWGROUP_VALUES = VECTOR_SIZE * ROWGROUP_VECTORS
N_ROWGROUPS = 6
BAD = (1, 4)
OPTIONS = api.CompressionOptions(
    vector_size=VECTOR_SIZE, rowgroup_vectors=ROWGROUP_VECTORS
)
THREADS = 16
ROUNDS = 6
LOW, HIGH = 29.5, 30.5


def bitwise_equal(a, b):
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    return a.shape == b.shape and np.array_equal(
        a.view(np.uint64), b.view(np.uint64)
    )


@pytest.fixture
def corrupted(tmp_path):
    """A column file with two flipped row-groups; returns (path, values)."""
    rng = np.random.default_rng(7)
    values = np.round(
        np.cumsum(rng.normal(0, 0.25, ROWGROUP_VALUES * N_ROWGROUPS)) + 30.0,
        2,
    )
    path = tmp_path / "damaged.alpc"
    api.write(path, values, OPTIONS)
    metadata = ColumnFileReader(path).metadata
    data = bytearray(path.read_bytes())
    for index in BAD:
        data[metadata[index].offset + 3] ^= 0x20
    path.write_bytes(bytes(data))
    return path, values


def _good_values(values):
    keep = [
        values[i * ROWGROUP_VALUES : (i + 1) * ROWGROUP_VALUES]
        for i in range(N_ROWGROUPS)
        if i not in BAD
    ]
    return np.concatenate(keep)


def _range_values(values):
    good = _good_values(values)
    return good[(good >= LOW) & (good <= HIGH)]


class TestConcurrentDegradedReader:
    def test_hammer_is_deterministic_with_exact_quarantine(self, corrupted):
        path, values = corrupted
        reader = ColumnFileReader(path, degraded=True)
        cache = DecodedVectorCache(byte_budget=64 << 20)
        expect_all = _good_values(values)
        expect_range = _range_values(values)
        good_index = 2
        expect_rg = values[
            good_index * ROWGROUP_VALUES : (good_index + 1) * ROWGROUP_VALUES
        ]

        def hammer(worker):
            outcomes = []
            for round_no in range(ROUNDS):
                kind = (worker + round_no) % 4
                if kind == 0:
                    # Bulk degraded read, through the shared cache for
                    # half the workers so cached and uncached decodes
                    # race on the same row-groups.
                    got = reader.read_all(
                        cache=cache if worker % 2 else None
                    )
                    outcomes.append(("all", bitwise_equal(got, expect_all)))
                elif kind == 1:
                    chunks = [
                        chunk[(chunk >= LOW) & (chunk <= HIGH)]
                        for _, chunk in reader.scan_range(LOW, HIGH)
                    ]
                    got = (
                        np.concatenate(chunks)
                        if chunks
                        else np.empty(0, dtype=np.float64)
                    )
                    outcomes.append(
                        ("range", bitwise_equal(got, expect_range))
                    )
                elif kind == 2:
                    got = reader.read_rowgroup(good_index)
                    outcomes.append(("rg", bitwise_equal(got, expect_rg)))
                else:
                    # Direct access to a corrupt row-group raises even
                    # on a degraded reader — explicit reads are strict.
                    try:
                        reader.read_rowgroup(BAD[worker % len(BAD)])
                        outcomes.append(("bad", False))
                    except CorruptRowGroupError:
                        outcomes.append(("bad", True))
            return outcomes

        obs.enable()
        obs.reset()
        try:
            with ThreadPoolExecutor(max_workers=THREADS) as pool:
                all_outcomes = list(pool.map(hammer, range(THREADS)))
            snap = obs.snapshot()
        finally:
            obs.disable()
            obs.reset()

        flat = [item for outcomes in all_outcomes for item in outcomes]
        assert len(flat) == THREADS * ROUNDS
        assert all(ok for _, ok in flat), [kind for kind, ok in flat if not ok]

        # Exactly one quarantine and one checksum tally per bad
        # row-group, regardless of how many threads raced into them.
        counters = snap["counters"]
        assert counters["columnfile.checksum_failures"] == len(BAD)
        assert counters["columnfile.rowgroups_quarantined"] == len(BAD)
        assert (
            counters["columnfile.values_quarantined"]
            == len(BAD) * ROWGROUP_VALUES
        )

        report = reader.scan_report()
        assert report.rowgroups_quarantined == len(BAD)
        assert report.values_quarantined == len(BAD) * ROWGROUP_VALUES
        assert tuple(entry.index for entry in report.quarantined) == BAD

    def test_strict_reader_raises_under_concurrency(self, corrupted):
        path, _ = corrupted
        reader = ColumnFileReader(path, degraded=False)

        def attempt(_):
            try:
                reader.read_all()
                return False
            except CorruptRowGroupError:
                return True

        with ThreadPoolExecutor(max_workers=8) as pool:
            assert all(pool.map(attempt, range(16)))

    def test_cache_converges_to_good_rowgroups_only(self, corrupted):
        path, values = corrupted
        reader = ColumnFileReader(path, degraded=True)
        cache = DecodedVectorCache(byte_budget=64 << 20)

        def scan(_):
            return reader.read_all(cache=cache)

        with ThreadPoolExecutor(max_workers=8) as pool:
            results = list(pool.map(scan, range(24)))
        expect = _good_values(values)
        assert all(bitwise_equal(got, expect) for got in results)
        # Only intact row-groups are ever cached; failures never are.
        assert cache.stats().entries == N_ROWGROUPS - len(BAD)
