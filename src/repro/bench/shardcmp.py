"""Routed-vs-single-node serving comparison for the shard-smoke job.

``python -m repro.bench.shardcmp ROUTER.json SINGLE.json`` reads two
loadgen ``BENCH_*.json`` documents — one driven through the shard
router (record codec ``shard_loadgen``, see ``--record-name`` on
``alp-repro loadgen``) and one against a lone backend (codec
``loadgen``) — and pins the scaling claim CI cares about:

- **aggregate throughput**: routed served-MB/s must be at least
  ``--min-speedup`` (default 2.0) times the single-node number.  Both
  runs execute in the same job on the same runner, so the ratio is
  machine-relative by construction and holds on slow CI hardware.
- **zero failed requests**: the routed run's ``error_count`` must be 0
  even when the job kills a backend mid-run — failover and partial
  degradation are supposed to absorb that, and this is where the claim
  is enforced end-to-end rather than in a unit test.

Like :mod:`repro.bench.servecmp`, the verdict is also rendered as
GitHub-flavoured markdown and appended to ``--summary PATH`` or
``$GITHUB_STEP_SUMMARY`` when set.
"""

from __future__ import annotations

import argparse
import os
import sys
from dataclasses import dataclass
from pathlib import Path

from repro.bench.records import BenchRecord, read_bench_json

#: Routed throughput must be at least this multiple of single-node.
DEFAULT_MIN_SPEEDUP = 2.0


@dataclass(frozen=True)
class LoadgenSlice:
    """The slice of one loadgen record this comparison consumes."""

    label: str
    served_mbps: float
    requests_per_s: float
    requests: int
    error_count: int
    p99_ms: float


def load_slice(path: str | Path, codec: str, label: str) -> LoadgenSlice:
    """Read the ``codec`` record of one loadgen document."""
    _, records = read_bench_json(path)
    record = _record_named(records, codec, path)
    counters = record.counters
    values: dict[str, float] = {}
    for key in ("requests_per_s", "latency_p99_ms", "error_count"):
        raw = counters.get(key)
        if isinstance(raw, bool) or not isinstance(raw, (int, float)):
            raise ValueError(
                f"{path}: loadgen record counter {key!r} missing or "
                "non-numeric; was this written by write_loadgen_json?"
            )
        values[key] = float(raw)
    return LoadgenSlice(
        label=label,
        served_mbps=record.decompress_mbps,
        requests_per_s=values["requests_per_s"],
        requests=record.n,
        error_count=int(values["error_count"]),
        p99_ms=values["latency_p99_ms"],
    )


def _record_named(
    records: list[BenchRecord], codec: str, path: str | Path
) -> BenchRecord:
    for record in records:
        if record.codec == codec:
            return record
    raise ValueError(f"{path}: no {codec!r} record in document")


def compare(
    router: LoadgenSlice,
    single: LoadgenSlice,
    min_speedup: float,
) -> list[str]:
    """Failure messages from the routed-vs-single comparison."""
    problems: list[str] = []
    if single.served_mbps <= 0:
        problems.append(
            "single-node run served 0 MB/s — nothing to compare against"
        )
        return problems
    speedup = router.served_mbps / single.served_mbps
    if speedup < min_speedup:
        problems.append(
            f"routed throughput is only {speedup:.2f}x single-node "
            f"({router.served_mbps:.1f} vs {single.served_mbps:.1f} "
            f"MB/s served; floor {min_speedup:.1f}x)"
        )
    if router.error_count:
        problems.append(
            f"routed run failed {router.error_count} request(s) — "
            "failover/partial degradation should absorb backend loss "
            "with zero failures"
        )
    return problems


def render_markdown(
    router: LoadgenSlice,
    single: LoadgenSlice,
    problems: list[str],
    min_speedup: float,
) -> str:
    """The routed-vs-single picture as a markdown table."""
    speedup = (
        router.served_mbps / single.served_mbps
        if single.served_mbps > 0
        else float("inf")
    )
    lines = [
        "## Sharded serving (router vs single node)",
        "",
        "| run | served MB/s | req/s | p99 ms | requests | errors |",
        "|---|---:|---:|---:|---:|---:|",
    ]
    for stats in (single, router):
        lines.append(
            f"| {stats.label} | {stats.served_mbps:.1f} "
            f"| {stats.requests_per_s:.0f} | {stats.p99_ms:.1f} "
            f"| {stats.requests} | {stats.error_count} |"
        )
    lines.append("")
    verdict = "meets" if speedup >= min_speedup else "UNDER"
    lines.append(
        f"Aggregate speedup: **{speedup:.2f}x** ({verdict} the "
        f"{min_speedup:.1f}x floor)."
    )
    for problem in problems:
        lines.append(f"- :x: {problem}")
    if not problems:
        lines.append("")
        lines.append("**Shard comparison passed.**")
    return "\n".join(lines) + "\n"


def write_summary(markdown: str, summary_path: str | None) -> None:
    """Append ``markdown`` to ``summary_path`` or ``$GITHUB_STEP_SUMMARY``."""
    path = summary_path or os.environ.get("GITHUB_STEP_SUMMARY")
    if not path:
        return
    with Path(path).open("a", encoding="utf-8") as handle:
        handle.write(markdown)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.shardcmp",
        description=(
            "compare a routed loadgen run against a single-node run "
            "and enforce the aggregate-throughput floor"
        ),
    )
    parser.add_argument(
        "router", help="BENCH_*.json of the run through the shard router"
    )
    parser.add_argument(
        "single", help="BENCH_*.json of the single-backend run"
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=DEFAULT_MIN_SPEEDUP,
        help=(
            "minimum routed/single served-MB/s ratio "
            f"(default {DEFAULT_MIN_SPEEDUP})"
        ),
    )
    parser.add_argument(
        "--router-codec",
        default="shard_loadgen",
        help="record codec of the routed run (default shard_loadgen)",
    )
    parser.add_argument(
        "--single-codec",
        default="loadgen",
        help="record codec of the single-node run (default loadgen)",
    )
    parser.add_argument(
        "--summary",
        default=None,
        help=(
            "append the markdown table to this file "
            "(default: $GITHUB_STEP_SUMMARY when set)"
        ),
    )
    args = parser.parse_args(argv)

    router = load_slice(args.router, args.router_codec, "router (3 shards)")
    single = load_slice(args.single, args.single_codec, "single node")
    problems = compare(router, single, args.min_speedup)
    markdown = render_markdown(router, single, problems, args.min_speedup)
    print(markdown, end="")
    write_summary(markdown, args.summary)
    if problems:
        print(f"shardcmp FAILED: {len(problems)} problem(s)")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
