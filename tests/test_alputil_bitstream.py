"""Unit tests for the MSB-first bit stream."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.alputil.bitstream import BitReader, BitWriter


class TestBitWriter:
    def test_empty_stream(self):
        assert BitWriter().finish() == b""

    def test_single_byte(self):
        w = BitWriter()
        w.write(0xAB, 8)
        assert w.finish() == b"\xab"

    def test_msb_first_padding(self):
        w = BitWriter()
        w.write(0b101, 3)
        assert w.finish() == bytes([0b10100000])

    def test_cross_byte_field(self):
        w = BitWriter()
        w.write(0xFFF, 12)
        assert w.finish() == b"\xff\xf0"

    def test_width_64(self):
        w = BitWriter()
        w.write(2**64 - 1, 64)
        assert w.finish() == b"\xff" * 8

    def test_value_is_masked_to_width(self):
        w = BitWriter()
        w.write(0b111111, 2)  # only the low 2 bits survive
        assert w.finish() == bytes([0b11000000])

    def test_zero_width_is_noop(self):
        w = BitWriter()
        w.write(123, 0)
        assert w.bit_length == 0

    def test_bit_length_tracks_writes(self):
        w = BitWriter()
        w.write(1, 3)
        w.write(1, 10)
        assert w.bit_length == 13

    def test_invalid_width_rejected(self):
        with pytest.raises(ValueError):
            BitWriter().write(0, 65)
        with pytest.raises(ValueError):
            BitWriter().write(0, -1)


class TestBitReader:
    def test_read_back_single(self):
        r = BitReader(b"\xab")
        assert r.read(8) == 0xAB

    def test_read_bit_sequence(self):
        r = BitReader(bytes([0b10110000]))
        assert [r.read_bit() for _ in range(4)] == [1, 0, 1, 1]

    def test_eof_raises(self):
        r = BitReader(b"\x00")
        r.read(8)
        with pytest.raises(EOFError):
            r.read(1)

    def test_bits_consumed(self):
        r = BitReader(b"\x00\x00")
        r.read(5)
        assert r.bits_consumed == 5
        assert r.bits_remaining == 11

    def test_zero_width_read(self):
        assert BitReader(b"").read(0) == 0


class TestRoundTrip:
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=1, max_value=64),
                st.integers(min_value=0, max_value=2**64 - 1),
            ),
            max_size=200,
        )
    )
    def test_arbitrary_fields_roundtrip(self, fields):
        w = BitWriter()
        expected = []
        for width, value in fields:
            w.write(value, width)
            expected.append((width, value & ((1 << width) - 1)))
        r = BitReader(w.finish())
        for width, value in expected:
            assert r.read(width) == value

    def test_interleaved_wide_and_narrow(self):
        w = BitWriter()
        pattern = [(1, 1), (64, 2**63 + 5), (3, 6), (17, 99999), (1, 0)]
        for width, value in pattern:
            w.write(value, width)
        r = BitReader(w.finish())
        for width, value in pattern:
            assert r.read(width) == value
