"""Why does a column compress (or not)?  The paper's Section 2 analysis.

Runs the dataset diagnosis on three very different columns — one
decimal-origin time series, one duplicate-heavy pool, and one
"real doubles" coordinate column — and prints the compressibility
report plus the distributions that explain each verdict.

Run:  python examples/dataset_analysis.py
"""

from repro.analysis.histograms import (
    precision_histogram,
    render_histogram,
    xor_zero_histograms,
)
from repro.analysis.report import compressibility_report
from repro.baselines.registry import get_codec
from repro.data import get_dataset

for name in ("Stocks-USA", "SD-bench", "POI-lat"):
    values = get_dataset(name, n=16_384)
    print("=" * 72)
    print(compressibility_report(values, name=name))

    print()
    print(render_histogram(
        precision_histogram(values),
        f"  visible decimal precision — {name}",
        width=30,
        label="d=",
    ))
    leading, trailing = xor_zero_histograms(values)
    print(render_histogram(
        trailing,
        f"  XOR-with-previous trailing zero bits — {name}",
        width=30,
        label="~",
    ))

    measured = get_codec("alp").roundtrip_bits_per_value(values)
    print(f"\n  actual ALP result: {measured:.1f} bits/value "
          f"({64 / measured:.1f}x)\n")
