"""A small vectorized query engine (the paper's Tectorwise substrate).

Section 4.3 of the paper integrates every compressor into Tectorwise, a
research engine with vector-at-a-time (Volcano-with-vectors) execution,
and benchmarks SCAN, SUM and COMP queries.  This subpackage provides the
same machinery:

- :mod:`repro.query.sources` — per-codec column sources that deliver
  1024-value vectors out of compressed storage (vector-at-a-time for
  ALP/PDE, stream-decode for the XOR family, block-decode for the
  general-purpose codec),
- :mod:`repro.query.operators` — Scan / Filter / Aggregate operators in
  the pull-based, vector-at-a-time style,
- :mod:`repro.query.engine` — query helpers (scan / sum / compression)
  plus multi-threaded partitioned execution for the scaling experiment.
"""

from repro.query.engine import (
    comp_query,
    run_partitioned,
    scan_query,
    sum_query,
)
from repro.query.operators import (
    AggregateOperator,
    FilterOperator,
    ScanOperator,
)
from repro.query.sources import (
    ColumnSource,
    FileColumnSource,
    make_source,
)
from repro.query.groupby import GroupedAggregate, group_by
from repro.query.table import CompressedTable, FilterPredicate

__all__ = [
    "AggregateOperator",
    "ColumnSource",
    "CompressedTable",
    "FileColumnSource",
    "FilterOperator",
    "FilterPredicate",
    "GroupedAggregate",
    "ScanOperator",
    "comp_query",
    "group_by",
    "make_source",
    "run_partitioned",
    "scan_query",
    "sum_query",
]
