"""Synthetic ML-model weight tensors for the Table 7 experiment.

The paper compresses the float32 weights of four real models (a vision
transformer, GPT-2, a text2text model and a tiny word2vec).  Checkpoints
are not downloadable offline, so we synthesize weight tensors with the
distributional properties that matter to the compared codecs: zero-mean,
per-layer-scaled Gaussians with fully random mantissas and a narrow
exponent band (DESIGN.md, substitution 6).  Parameter counts are scaled
down ~100x to keep the pure-Python baselines tractable; bits/value is
size-independent.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.generators import ml_weights


@dataclass(frozen=True)
class ModelSpec:
    """One synthetic model from Table 7."""

    name: str
    model_type: str
    paper_params: int
    synth_params: int
    seed: int

    def generate(self) -> np.ndarray:
        """Materialize the float32 weight tensor."""
        rng = np.random.default_rng(self.seed)
        return ml_weights(self.synth_params, rng)


MODELS: dict[str, ModelSpec] = {
    spec.name: spec
    for spec in (
        ModelSpec("Dino-Vitb16", "Vision Transformer", 86_389_248, 400_000, 101),
        ModelSpec("GPT2", "Text Generation", 124_439_808, 500_000, 102),
        ModelSpec("Grammarly-lg", "Text2Text", 783_092_736, 600_000, 103),
        ModelSpec("W2V-Tweets", "Word2Vec", 3_000, 3_000, 104),
    )
}


def get_model_weights(name: str) -> np.ndarray:
    """Generate the synthetic weights of one Table 7 model."""
    try:
        return MODELS[name].generate()
    except KeyError:
        known = ", ".join(MODELS)
        raise KeyError(f"unknown model {name!r}; known: {known}") from None
