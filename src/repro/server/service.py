"""The asyncio TCP service: framing, admission, deadlines, draining.

Request lifecycle::

    accept -> read frame -> admit (bounded, else `overloaded`)
           -> worker thread (decode/compress via repro.api + the cache)
           -> respond (bounded drain, else slow-client disconnect)

Design points, in the order they bite in production:

- **The event loop never blocks.**  All codec/storage work runs in a
  ``ThreadPoolExecutor`` (``config.workers`` threads); the loop only
  parses frames and schedules.  reprolint RL6 enforces this split.
- **Bounded admission, explicit backpressure.**  At most
  ``config.max_inflight`` requests may be admitted-but-unfinished; the
  request that would exceed the bound is answered immediately with an
  ``overloaded`` error frame — never queued invisibly, never hung.  A
  slot is released when its worker actually finishes, so the bound
  tracks true resource usage even after a deadline fires.
- **Per-request deadlines.**  ``deadline_ms`` in the request header
  (default ``config.default_deadline_ms``) bounds queue wait + service
  time.  Expired requests get a ``deadline_exceeded`` frame; a request
  that expires while *queued* is never executed.  A worker that is
  already running cannot be interrupted — the slot stays held until it
  returns and its late result is discarded.
- **Slow-client write limits.**  Response writes must drain within
  ``config.write_timeout_s``; a client that cannot keep up is
  disconnected (``server.slow_clients``) instead of parking response
  buffers in memory.
- **Graceful shutdown.**  :meth:`ReproServer.shutdown` stops accepting,
  answers new requests on live connections with ``shutting_down``, and
  *drains*: every admitted request runs to completion and its response
  is written before connections close (bounded by
  ``config.drain_timeout_s``).
- **Degraded serving.**  Registered readers quarantine corrupt
  row-groups (PR 4) instead of failing requests; responses carry the
  quarantine tallies so clients can alert.
"""

from __future__ import annotations

import asyncio
import threading
from concurrent.futures import Future as ThreadFuture
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass

from repro import api, obs
from repro.server import protocol
from repro.server.ops import OpError, OpHandler, OpResult, build_ops
from repro.server.registry import DatasetRegistry
from repro.storage.errors import IntegrityError


@dataclass(frozen=True)
class ServerConfig:
    """Every serving knob in one place (mirrors ``CompressionOptions``)."""

    host: str = "127.0.0.1"
    port: int = 0  # 0 = pick a free port; read it back from `server.port`
    #: Worker threads for blocking codec/storage work.
    workers: int = 4
    #: Admitted-but-unfinished request bound (admission queue + running).
    max_inflight: int = 32
    #: Default request deadline (queue wait + service time), milliseconds.
    default_deadline_ms: float = 30_000.0
    #: A response write must drain within this many seconds.
    write_timeout_s: float = 30.0
    #: Graceful shutdown waits at most this long for in-flight work.
    drain_timeout_s: float = 30.0
    #: Largest accepted request payload.
    max_payload_bytes: int = protocol.MAX_PAYLOAD_BYTES
    #: Options for the compress/decompress RPCs.
    compression: api.CompressionOptions | None = None

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        if self.max_inflight < 1:
            raise ValueError(
                f"max_inflight must be >= 1, got {self.max_inflight}"
            )


class _ClientGone(Exception):
    """The peer disconnected or was dropped for being too slow."""


class _DeadlineExpired(Exception):
    """A queued request ran out of deadline before execution."""


class ReproServer:
    """One serving instance: registry + cache + asyncio TCP endpoint.

    Construct, then either ``await start()`` + ``await serve_forever()``
    inside an event loop, or use :func:`run_in_thread` /
    ``alp-repro serve`` from synchronous code.
    """

    def __init__(
        self,
        registry: DatasetRegistry,
        config: ServerConfig | None = None,
    ) -> None:
        self.registry = registry
        self.config = config or ServerConfig()
        self._ops: dict[str, OpHandler] = build_ops(
            registry, self.config.compression
        )
        self._executor = ThreadPoolExecutor(
            max_workers=self.config.workers,
            thread_name_prefix="repro-server",
        )
        self._server: asyncio.base_events.Server | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._inflight = 0
        #: Admitted requests whose response frame has not been sent yet.
        #: Distinct from ``_inflight``: a deadline-expired request frees
        #: its *response* immediately but holds its worker slot until
        #: the thread returns — drain must wait for both to hit zero.
        self._pending_responses = 0
        self._draining = False
        self._drained: asyncio.Event | None = None
        #: Set once shutdown() has fully finished; the loop thread waits
        #: on it so the event loop outlives the drain.
        self._terminated: asyncio.Event | None = None
        self._connections: set[asyncio.StreamWriter] = set()

    # -- extension ----------------------------------------------------

    def register_op(self, name: str, handler: OpHandler) -> None:
        """Add (or replace) an op handler — the tests' hook for slow or
        failing ops, and the extension point for embedders."""
        self._ops[name] = handler

    # -- lifecycle ----------------------------------------------------

    @property
    def port(self) -> int:
        """The bound TCP port (useful with ``config.port = 0``)."""
        if self._server is None or not self._server.sockets:
            raise RuntimeError("server is not started")
        return int(self._server.sockets[0].getsockname()[1])

    @property
    def inflight(self) -> int:
        """Requests admitted and not yet finished."""
        return self._inflight

    async def start(self) -> None:
        """Bind and start accepting connections."""
        self._loop = asyncio.get_running_loop()
        self._drained = asyncio.Event()
        self._drained.set()
        self._terminated = asyncio.Event()
        self._server = await asyncio.start_server(
            self._on_connection, host=self.config.host, port=self.config.port
        )

    async def serve_forever(self) -> None:
        """Serve until cancelled or :meth:`shutdown` is called."""
        if self._server is None:
            raise RuntimeError("call start() before serve_forever()")
        try:
            await self._server.serve_forever()
        except asyncio.CancelledError:
            pass

    async def shutdown(self) -> None:
        """Stop accepting, drain in-flight requests, close connections."""
        if self._server is None:
            return
        self._draining = True
        self._server.close()
        await self._server.wait_closed()
        # Drain: every admitted request finishes, *and its response is
        # written*, before the connections go away (bounded so a stuck
        # worker cannot wedge shutdown forever).
        if self._drained is not None:
            self._check_drained()
            try:
                await asyncio.wait_for(
                    self._drained.wait(), self.config.drain_timeout_s
                )
            except asyncio.TimeoutError:
                pass
        for writer in tuple(self._connections):
            writer.close()
        self._executor.shutdown(wait=False)
        if self._terminated is not None:
            self._terminated.set()

    async def wait_terminated(self) -> None:
        """Block until :meth:`shutdown` has fully finished."""
        if self._terminated is not None:
            await self._terminated.wait()

    # -- connection handling ------------------------------------------

    async def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        obs.counter_add("server.connections")
        self._connections.add(writer)
        try:
            while True:
                try:
                    header, payload = await self._read_frame(reader)
                except (
                    asyncio.IncompleteReadError,
                    asyncio.CancelledError,
                    ConnectionError,
                    _ClientGone,
                ):
                    # CancelledError reaches here only when shutdown()
                    # closes a connection that is idle between frames —
                    # draining already guaranteed no response is pending.
                    break
                except protocol.ProtocolError as exc:
                    # Framing is lost: answer once, then hang up.
                    await self._send(
                        writer,
                        protocol.error_frame(
                            protocol.ERR_BAD_REQUEST, str(exc)
                        ),
                    )
                    break
                try:
                    await self._handle_request(header, payload, writer)
                except _ClientGone:
                    break
        finally:
            self._connections.discard(writer)
            writer.close()

    async def _read_frame(
        self, reader: asyncio.StreamReader
    ) -> tuple[dict[str, object], bytes]:
        prefix = await reader.readexactly(protocol.PREFIX_LEN)
        header_len, payload_len = protocol.parse_prefix(
            prefix, self.config.max_payload_bytes
        )
        header = protocol.decode_header(await reader.readexactly(header_len))
        payload = (
            await reader.readexactly(payload_len) if payload_len else b""
        )
        obs.counter_add(
            "server.bytes_in", protocol.PREFIX_LEN + header_len + payload_len
        )
        return header, payload

    async def _send(
        self, writer: asyncio.StreamWriter, frame: bytes
    ) -> None:
        if writer.is_closing():
            raise _ClientGone()
        writer.write(frame)
        try:
            await asyncio.wait_for(
                writer.drain(), self.config.write_timeout_s
            )
        except (asyncio.TimeoutError, ConnectionError) as exc:
            obs.counter_add("server.slow_clients")
            writer.close()
            raise _ClientGone() from exc
        obs.counter_add("server.bytes_out", len(frame))

    # -- request handling ---------------------------------------------

    async def _handle_request(
        self,
        header: dict[str, object],
        payload: bytes,
        writer: asyncio.StreamWriter,
    ) -> None:
        obs.counter_add("server.requests")
        request_id = header.get("id")
        if self._draining:
            obs.counter_add("server.shutdown_rejected")
            await self._send(
                writer,
                protocol.error_frame(
                    protocol.ERR_SHUTTING_DOWN,
                    "server is draining; not accepting new requests",
                    request_id,
                ),
            )
            return
        op = header.get("op")
        handler = self._ops.get(op) if isinstance(op, str) else None
        if handler is None:
            await self._send(
                writer,
                protocol.error_frame(
                    protocol.ERR_BAD_REQUEST,
                    f"unknown op {op!r}; known: {sorted(self._ops)}",
                    request_id,
                ),
            )
            return
        # Bounded admission: reject — loudly — rather than queue without
        # limit.  The client owns the retry policy.
        if self._inflight >= self.config.max_inflight:
            obs.counter_add("server.overloaded")
            await self._send(
                writer,
                protocol.error_frame(
                    protocol.ERR_OVERLOADED,
                    f"server is at its admission limit "
                    f"({self.config.max_inflight} in flight); retry later",
                    request_id,
                ),
            )
            return
        # Counted until the response frame is on the wire, so graceful
        # shutdown never closes a connection under an unsent response.
        self._pending_responses += 1
        if self._drained is not None:
            self._drained.clear()
        try:
            frame = await self._admit_and_run(
                handler, header, payload, request_id
            )
            await self._send(writer, frame)
        finally:
            self._pending_responses -= 1
            self._check_drained()

    async def _admit_and_run(
        self,
        handler: OpHandler,
        header: dict[str, object],
        payload: bytes,
        request_id: object,
    ) -> bytes:
        if self._loop is None:
            raise RuntimeError("server is not started")
        deadline_ms = header.get("deadline_ms")
        if not isinstance(deadline_ms, (int, float)) or isinstance(
            deadline_ms, bool
        ):
            deadline_ms = self.config.default_deadline_ms
        deadline = self._loop.time() + float(deadline_ms) / 1000.0

        self._inflight += 1
        obs.gauge_set("server.inflight", self._inflight)
        thread_future: ThreadFuture[OpResult] = self._executor.submit(
            self._run_op, handler, header, payload, deadline
        )
        thread_future.add_done_callback(self._on_worker_done)
        waiter = asyncio.wrap_future(thread_future, loop=self._loop)
        remaining = deadline - self._loop.time()
        done, _pending = await asyncio.wait(
            {waiter}, timeout=max(remaining, 0.0)
        )
        if not done:
            # The worker is still running; it cannot be interrupted, but
            # the client gets its answer now and the late result is
            # discarded (the admission slot is released by the worker's
            # done-callback, so the bound stays truthful).
            obs.counter_add("server.deadline_exceeded")
            waiter.add_done_callback(_consume_result)
            return protocol.error_frame(
                protocol.ERR_DEADLINE,
                f"deadline of {deadline_ms} ms exceeded",
                request_id,
            )
        try:
            result = waiter.result()
        except _DeadlineExpired:
            obs.counter_add("server.deadline_exceeded")
            return protocol.error_frame(
                protocol.ERR_DEADLINE,
                f"deadline of {deadline_ms} ms exceeded while queued",
                request_id,
            )
        except OpError as exc:
            return protocol.error_frame(exc.code, exc.message, request_id)
        except IntegrityError as exc:
            return protocol.error_frame(
                protocol.ERR_CORRUPT, str(exc), request_id
            )
        except Exception as exc:  # noqa: BLE001 — the op boundary
            obs.counter_add("server.errors")
            return protocol.error_frame(
                protocol.ERR_INTERNAL,
                f"{type(exc).__name__}: {exc}",
                request_id,
            )
        try:
            return protocol.ok_frame(
                result.fields, result.payload, request_id
            )
        except protocol.ProtocolError as exc:
            obs.counter_add("server.errors")
            return protocol.error_frame(
                protocol.ERR_INTERNAL, str(exc), request_id
            )

    def _run_op(
        self,
        handler: OpHandler,
        header: dict[str, object],
        payload: bytes,
        deadline: float,
    ) -> OpResult:
        """Worker-thread entry: deadline gate, then the blocking handler."""
        if self._loop is None:
            raise RuntimeError("server is not started")
        if self._loop.time() >= deadline:
            raise _DeadlineExpired()
        with obs.span("server.request"):
            return handler(header, payload)

    def _on_worker_done(self, future: ThreadFuture) -> None:
        """Release the admission slot when the worker truly finishes."""
        loop = self._loop
        if loop is None or loop.is_closed():
            return
        try:
            loop.call_soon_threadsafe(self._release_slot)
        except RuntimeError:
            pass  # loop shut down between the check and the call

    def _release_slot(self) -> None:
        self._inflight -= 1
        obs.gauge_set("server.inflight", self._inflight)
        self._check_drained()

    def _check_drained(self) -> None:
        if (
            self._inflight == 0
            and self._pending_responses == 0
            and self._drained is not None
        ):
            self._drained.set()


def _consume_result(future: "asyncio.Future[OpResult]") -> None:
    """Retrieve a discarded late result so asyncio never logs it."""
    if not future.cancelled():
        future.exception()


class ServerHandle:
    """A server running on a dedicated event-loop thread.

    This is what synchronous callers (tests, the CLI, embedders) use:
    construction blocks until the socket is bound, :meth:`shutdown`
    performs the graceful drain from any thread.
    """

    def __init__(
        self,
        registry: DatasetRegistry | None = None,
        config: ServerConfig | None = None,
        server: ReproServer | None = None,
    ) -> None:
        if server is None:
            if registry is None:
                raise ValueError(
                    "ServerHandle needs a registry (to build a server) "
                    "or an existing server"
                )
            server = ReproServer(registry, config)
        elif registry is not None or config is not None:
            raise ValueError(
                "pass either registry/config or a pre-built server, "
                "not both"
            )
        self.server = server
        self._started = threading.Event()
        self._startup_error: BaseException | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread = threading.Thread(
            target=self._run, name="repro-server-loop", daemon=True
        )
        self._thread.start()
        self._started.wait()
        if self._startup_error is not None:
            raise self._startup_error

    def _run(self) -> None:
        asyncio.run(self._main())

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        try:
            await self.server.start()
        except BaseException as exc:  # bind failures surface to __init__
            self._startup_error = exc
            self._started.set()
            return
        self._started.set()
        await self.server.serve_forever()
        # serve_forever returns as soon as the listener closes; keep the
        # loop alive until shutdown() has finished draining, or the
        # in-flight handlers would be cancelled mid-response.
        await self.server.wait_terminated()

    @property
    def host(self) -> str:
        return self.server.config.host

    @property
    def port(self) -> int:
        return self.server.port

    def shutdown(self, timeout_s: float = 60.0) -> None:
        """Gracefully drain and stop the server; joins the loop thread."""
        loop = self._loop
        if loop is not None and loop.is_running():
            future = asyncio.run_coroutine_threadsafe(
                self.server.shutdown(), loop
            )
            try:
                future.result(timeout=timeout_s)
            except TimeoutError:
                pass
        self._thread.join(timeout=timeout_s)


def run_in_thread(
    registry: DatasetRegistry, config: ServerConfig | None = None
) -> ServerHandle:
    """Start a server on a background event-loop thread (bound on return)."""
    return ServerHandle(registry, config)
