"""Serving-latency comparison: cold vs warm vs checked-in baseline.

``python -m repro.bench.servecmp COLD.json [WARM.json]`` reads loadgen
``BENCH_*.json`` documents (one ``served/loadgen`` record whose
``counters`` carry the latency percentiles — see
:func:`repro.server.loadgen.write_loadgen_json`) and reports the
serving latency picture CI cares about:

- **cold vs baseline** (``--baseline PATH``): the cold-file p99 —
  first-touch reads, nothing cached — compared against the checked-in
  baseline p99.  More than ``--max-regression`` (fractional, default
  0.5) slower fails; wall-clock latencies on shared CI runners are
  noisy, so the bound is deliberately loose and catches step changes
  (a reintroduced payload copy), not jitter.
- **cold vs warm**: the delta the decoded-vector cache + buffer pool
  buy once resident, published in the job summary so the effect of the
  zero-copy read path is a number in every run.
- **memory fields**: per-request large-allocation counts
  (``large_allocs``) are compared *strictly* when both runs carry them
  — allocation counts are deterministic where latency is not, so a
  steady-state run that allocates more than baseline fails even inside
  the latency tolerance.

Like :mod:`repro.bench.gate`, the same table is rendered as
GitHub-flavoured markdown and appended to ``--summary PATH`` or
``$GITHUB_STEP_SUMMARY`` when set.
"""

from __future__ import annotations

import argparse
import os
import sys
from dataclasses import dataclass
from pathlib import Path

from repro.bench.records import BenchRecord, read_bench_json

#: Fail when cold p99 exceeds baseline p99 by more than this fraction.
DEFAULT_MAX_REGRESSION = 0.5

#: Latency percentiles lifted out of the loadgen counters dict.
LATENCY_KEYS = ("latency_p50_ms", "latency_p95_ms", "latency_p99_ms")


@dataclass(frozen=True)
class ServeStats:
    """The slice of one loadgen record this comparison consumes."""

    label: str
    p50_ms: float
    p95_ms: float
    p99_ms: float
    requests_per_s: float
    large_allocs: int | None
    peak_rss_bytes: int | None


def load_serve_stats(path: str | Path, label: str) -> ServeStats:
    """Read one loadgen document into a :class:`ServeStats`."""
    _, records = read_bench_json(path)
    record = _loadgen_record(records, path)
    counters = record.counters
    values: dict[str, float] = {}
    for key in (*LATENCY_KEYS, "requests_per_s"):
        raw = counters.get(key)
        if isinstance(raw, bool) or not isinstance(raw, (int, float)):
            raise ValueError(
                f"{path}: loadgen record counter {key!r} missing or "
                "non-numeric; was this written by write_loadgen_json?"
            )
        values[key] = float(raw)
    return ServeStats(
        label=label,
        p50_ms=values["latency_p50_ms"],
        p95_ms=values["latency_p95_ms"],
        p99_ms=values["latency_p99_ms"],
        requests_per_s=values["requests_per_s"],
        large_allocs=record.large_allocs,
        peak_rss_bytes=record.peak_rss_bytes,
    )


def _loadgen_record(
    records: list[BenchRecord], path: str | Path
) -> BenchRecord:
    for record in records:
        if record.codec == "loadgen":
            return record
    raise ValueError(f"{path}: no loadgen record in document")


def relative_change(baseline: float, current: float) -> float:
    """(current - baseline) / baseline; positive = slower/worse."""
    if baseline <= 0:
        return 0.0 if current <= 0 else float("inf")
    return (current - baseline) / baseline


def compare(
    cold: ServeStats,
    baseline: ServeStats | None,
    max_regression: float,
) -> list[str]:
    """Failure messages from the cold-vs-baseline comparison."""
    if baseline is None:
        return []
    problems: list[str] = []
    change = relative_change(baseline.p99_ms, cold.p99_ms)
    if change > max_regression:
        problems.append(
            f"cold p99 regressed {change:+.1%} vs baseline "
            f"({baseline.p99_ms:.1f} ms -> {cold.p99_ms:.1f} ms, "
            f"tolerance {max_regression:.0%})"
        )
    if (
        cold.large_allocs is not None
        and baseline.large_allocs is not None
        and cold.large_allocs > baseline.large_allocs
    ):
        problems.append(
            "per-request large-allocation count grew from "
            f"{baseline.large_allocs} to {cold.large_allocs} — a copy "
            "crept back into the read path (this check has no latency "
            "tolerance; allocation counts are deterministic)"
        )
    return problems


def render_markdown(
    cold: ServeStats,
    warm: ServeStats | None,
    baseline: ServeStats | None,
    problems: list[str],
    max_regression: float,
) -> str:
    """The serving-latency picture as a markdown table."""
    rows = [s for s in (baseline, cold, warm) if s is not None]
    lines = [
        "## Serving latency (loadgen)",
        "",
        "| run | p50 ms | p95 ms | p99 ms | req/s | large allocs/req |",
        "|---|---:|---:|---:|---:|---:|",
    ]
    for stats in rows:
        allocs = (
            str(stats.large_allocs)
            if stats.large_allocs is not None
            else "—"
        )
        lines.append(
            f"| {stats.label} | {stats.p50_ms:.1f} | {stats.p95_ms:.1f} "
            f"| {stats.p99_ms:.1f} | {stats.requests_per_s:.0f} "
            f"| {allocs} |"
        )
    lines.append("")
    if warm is not None:
        delta = relative_change(cold.p99_ms, warm.p99_ms)
        lines.append(
            f"Cold -> warm p99: {cold.p99_ms:.1f} ms -> "
            f"{warm.p99_ms:.1f} ms ({delta:+.1%}) — what the decoded "
            "cache + buffer pool buy once resident."
        )
    if baseline is not None:
        delta = relative_change(baseline.p99_ms, cold.p99_ms)
        verdict = "within" if delta <= max_regression else "OVER"
        lines.append(
            f"Cold p99 vs baseline: {delta:+.1%} ({verdict} the "
            f"{max_regression:.0%} bound)."
        )
    for problem in problems:
        lines.append(f"- :x: {problem}")
    if not problems:
        lines.append("")
        lines.append("**Serving comparison passed.**")
    return "\n".join(lines) + "\n"


def write_summary(markdown: str, summary_path: str | None) -> None:
    """Append ``markdown`` to ``summary_path`` or ``$GITHUB_STEP_SUMMARY``."""
    path = summary_path or os.environ.get("GITHUB_STEP_SUMMARY")
    if not path:
        return
    with Path(path).open("a", encoding="utf-8") as handle:
        handle.write(markdown)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.servecmp",
        description=(
            "compare loadgen latency records: cold vs warm vs a "
            "checked-in baseline"
        ),
    )
    parser.add_argument("cold", help="BENCH_loadgen_*.json of the cold run")
    parser.add_argument(
        "warm",
        nargs="?",
        default=None,
        help="optional warm-run BENCH_loadgen_*.json (cache resident)",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        help="checked-in baseline loadgen BENCH_*.json to gate against",
    )
    parser.add_argument(
        "--max-regression",
        type=float,
        default=DEFAULT_MAX_REGRESSION,
        help=(
            "max fractional cold-p99 increase vs baseline "
            f"(default {DEFAULT_MAX_REGRESSION})"
        ),
    )
    parser.add_argument(
        "--summary",
        default=None,
        help=(
            "append the markdown table to this file "
            "(default: $GITHUB_STEP_SUMMARY when set)"
        ),
    )
    args = parser.parse_args(argv)

    cold = load_serve_stats(args.cold, "cold")
    warm = (
        load_serve_stats(args.warm, "warm") if args.warm else None
    )
    baseline = (
        load_serve_stats(args.baseline, "baseline")
        if args.baseline
        else None
    )
    problems = compare(cold, baseline, args.max_regression)
    markdown = render_markdown(
        cold, warm, baseline, problems, args.max_regression
    )
    print(markdown, end="")
    write_summary(markdown, args.summary)
    if problems:
        print(f"servecmp FAILED: {len(problems)} problem(s)")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
