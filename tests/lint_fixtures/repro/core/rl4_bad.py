"""Seeded RL4 violations — a lint fixture, never imported."""

FULL_MASK = 18446744073709551615


def vector_chunks(n):
    return (n + 1024 - 1) // 1024
