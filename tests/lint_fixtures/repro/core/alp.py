"""Seeded RL2 violations — a lint fixture, never imported.

The basename ``alp.py`` marks this file hot, so per-value loops outside
pinned ``*_reference`` oracles are flagged.
"""


def decode_slow(values):
    total = 0
    for i in range(len(values)):
        total += values[i]
    while total > 0:
        total -= 1
    return total


def decode_reference(values):
    out = []
    for value in values.tolist():
        out.append(value)
    return out
