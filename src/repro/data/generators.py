"""Primitive generators the synthetic datasets are composed from.

The paper's 30 evaluation datasets are multi-gigabyte external downloads;
this offline reproduction synthesizes stand-ins from the statistical
fingerprints the paper itself reports (Table 1 semantics, Table 2
metrics).  The primitives below cover every property the compared
schemes exploit:

- temporal locality (random walks) vs i.i.d. draws,
- visible decimal precision, fixed or mixed per value,
- duplicate fraction (repeats of recent values),
- zero-run structure (the Gov/xx columns),
- magnitude level and spread,
- full-precision "real doubles" (coordinate-in-radians transforms).

Every generator takes an explicit ``numpy.random.Generator`` so datasets
are reproducible from a seed.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np


def round_decimals(values: np.ndarray, places: int) -> np.ndarray:
    """Round to a fixed number of decimal places (decimal-origin data)."""
    return np.round(np.asarray(values, dtype=np.float64), places)


def round_mixed_decimals(
    values: np.ndarray,
    places: Sequence[int],
    weights: Sequence[float],
    rng: np.random.Generator,
) -> np.ndarray:
    """Round each value to a precision drawn from a discrete distribution.

    Models columns like CMS/1 where Table 2 reports a large decimal-
    precision deviation (averages computed at assorted precisions).
    """
    values = np.asarray(values, dtype=np.float64)
    chosen = rng.choice(np.asarray(places), size=values.size, p=weights)
    out = np.empty_like(values)
    for p in np.unique(chosen):
        mask = chosen == p
        out[mask] = np.round(values[mask], int(p))
    return out


def random_walk(
    n: int,
    rng: np.random.Generator,
    start: float,
    step_std: float,
    low: float | None = None,
    high: float | None = None,
) -> np.ndarray:
    """Gaussian random walk — the shape of the time-series datasets."""
    steps = rng.normal(0.0, step_std, n)
    walk = start + np.cumsum(steps)
    if low is not None or high is not None:
        lo = -math.inf if low is None else low
        hi = math.inf if high is None else high
        # Reflect at the boundaries so the walk stays in its domain
        # without saturating into long constant runs.
        span = hi - lo
        if math.isfinite(span) and span > 0:
            walk = lo + np.abs((walk - lo) % (2 * span) - span)
        else:
            walk = np.clip(walk, lo, hi)
    return walk


def iid_lognormal(
    n: int,
    rng: np.random.Generator,
    median: float,
    sigma: float,
) -> np.ndarray:
    """Heavy-tailed positive draws (monetary columns)."""
    return median * rng.lognormal(0.0, sigma, n)


def iid_uniform(
    n: int, rng: np.random.Generator, low: float, high: float
) -> np.ndarray:
    """Uniform i.i.d. draws."""
    return rng.uniform(low, high, n)


def inject_duplicates(
    values: np.ndarray,
    fraction: float,
    rng: np.random.Generator,
    lookback: int = 200,
) -> np.ndarray:
    """Replace a fraction of values with a copy of a recent value.

    Reproduces the "non-unique % per vector" column of Table 2, which the
    XOR schemes (and cascades) exploit.  Duplicates reference one of the
    previous ``lookback`` values; with the default lookback of 200 only
    part of them land inside Chimp128's 128-value window, mirroring how
    real columns repeat values at assorted distances.
    """
    values = np.asarray(values, dtype=np.float64).copy()
    if values.size < 2 or fraction <= 0:
        return values
    dup_mask = rng.random(values.size) < fraction
    dup_mask[0] = False
    # Half the repeats copy the immediately preceding value (tick-data
    # style, preserving temporal locality); the rest reference a value a
    # geometric distance back, some beyond Chimp128's 128-value window.
    tail = np.minimum(
        rng.geometric(2.0 / lookback, size=values.size), lookback
    )
    offsets = np.where(rng.random(values.size) < 0.5, 1, tail)
    idx = np.flatnonzero(dup_mask)
    src = np.maximum(idx - offsets[idx], 0)
    # Sequential copy: a duplicate may itself be duplicated later, which
    # produces the run structure real data exhibits.
    for i, s in zip(idx.tolist(), src.tolist(), strict=True):
        values[i] = values[s]
    return values


def zero_dominated(
    n: int,
    rng: np.random.Generator,
    zero_fraction: float,
    nonzero: np.ndarray,
    period: int = 24_576,
) -> np.ndarray:
    """Mostly-zero column with *long consecutive* runs of zeros (Gov/xx).

    ``nonzero`` supplies the values for the non-zero slots (cycled).
    The column alternates between long zero stretches (geometric mean
    ``zero_fraction * period``) and non-zero bursts (geometric mean
    ``(1 - zero_fraction) * period``).  Long runs mean most 1024-value
    vectors are *entirely* zero — the structure behind the paper's
    sub-bit Gov/26 and Gov/40 ratios, and the data on which Gorilla and
    Chimp beat Chimp128 (Section 5).
    """
    out = np.empty(n, dtype=np.float64)
    nonzero = np.asarray(nonzero, dtype=np.float64)
    zero_mean = max(zero_fraction * period, 1.0)
    burst_mean = max((1.0 - zero_fraction) * period, 1.0)
    pos = 0
    nz_cursor = 0
    while pos < n:
        zeros = min(int(rng.geometric(1.0 / zero_mean)), n - pos)
        out[pos : pos + zeros] = 0.0
        pos += zeros
        if pos >= n:
            break
        burst = min(int(rng.geometric(1.0 / burst_mean)), n - pos)
        for _ in range(burst):
            out[pos] = nonzero[nz_cursor % nonzero.size]
            nz_cursor += 1
            pos += 1
    return out


def degrees_to_radians(degrees: np.ndarray) -> np.ndarray:
    """The POI transform: degree coordinates to radians.

    Multiplying by pi/180 turns short decimals into full-precision
    doubles — the one case in the paper's corpus that is *not* decimal-
    origin data and forces ALP_rd.
    """
    return np.asarray(degrees, dtype=np.float64) * (math.pi / 180.0)


def from_pool(
    n: int,
    rng: np.random.Generator,
    pool: np.ndarray,
    weights: np.ndarray | None = None,
) -> np.ndarray:
    """Draw from a small pool of distinct values (SD-bench, NYC/29 shape)."""
    pool = np.asarray(pool, dtype=np.float64)
    if weights is not None:
        weights = np.asarray(weights, dtype=np.float64)
        weights = weights / weights.sum()
    return rng.choice(pool, size=n, p=weights)


def ml_weights(
    n: int,
    rng: np.random.Generator,
    layer_sizes: Sequence[int] | None = None,
) -> np.ndarray:
    """Synthetic trained-model weights (float32, Table 7 substitute).

    Real checkpoints are Gaussian-ish per layer with layer-dependent
    scale (fan-in initialization shaped by training): full-precision
    mantissas, low exponent variance — exactly the regime ALP_rd-32
    targets.
    """
    if layer_sizes is None:
        layer_sizes = []
        remaining = n
        while remaining > 0:
            size = min(remaining, max(1024, n // 12))
            layer_sizes.append(size)
            remaining -= size
    parts = []
    for size in layer_sizes:
        fan_in = max(size, 64)
        scale = math.sqrt(2.0 / fan_in)
        parts.append(rng.normal(0.0, scale, size).astype(np.float32))
    weights = np.concatenate(parts)[:n]
    return weights.astype(np.float32)
