"""E4 — Table 4: compression ratio (bits/value) for every scheme.

Reproduces the paper's central ratio table: all 30 datasets x all
schemes, plus the LWC+ALP cascade column and the general-purpose
baseline, with the published numbers printed alongside.

Shape claims asserted (paper §4.1):

- ALP has the best all-dataset average among the floating-point
  encodings (i.e. excluding the general-purpose codec),
- ALP beats Chimp128 and PDE on a large majority of datasets,
- the cascade (LWC+ALP) never loses to plain ALP and wins big on the
  duplicate/run-heavy columns,
- ALP_rd engages exactly on POI-lat / POI-lon,
- ALP is at most ~2 bits behind PDE on the integer-count datasets.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.registry import get_codec
from repro.bench.harness import bench_n, measure_ratio
from repro.bench.report import format_table, shape_check
from repro.data import DATASET_ORDER, DATASETS
from repro.data.paper_reference import TABLE4_BITS_PER_VALUE

#: Table 4 column order (zstd stands behind the zlib substitute).
SCHEMES = (
    "gorilla",
    "chimp",
    "chimp128",
    "patas",
    "pde",
    "elf",
    "alp",
    "lwc+alp",
    "zlib(gp)",
)


def _measure_all(dataset_cache):
    n = bench_n()
    table: dict[str, dict[str, float]] = {}
    rd_used: dict[str, bool] = {}
    for name in DATASET_ORDER:
        values = dataset_cache(name, n)
        row = {}
        for scheme in SCHEMES:
            row[scheme] = measure_ratio(scheme, values)
        table[name] = row
        column = get_codec("alp").compress(values)
        rd_used[name] = column.uses_rd
    return table, rd_used


def test_table4_compression_ratio(benchmark, emit, dataset_cache):
    table, rd_used = benchmark.pedantic(
        lambda: _measure_all(dataset_cache), rounds=1, iterations=1
    )

    headers = ["dataset"] + [
        f"{s}|paper" for s in SCHEMES
    ]
    rows = []
    for name in DATASET_ORDER:
        paper = TABLE4_BITS_PER_VALUE[name]
        cells = [name]
        for scheme in SCHEMES:
            ref = paper["zstd"] if scheme == "zlib(gp)" else paper[scheme]
            cells.append(f"{table[name][scheme]:.1f}|{ref:.1f}")
        rows.append(cells)

    averages = {
        scheme: float(np.mean([table[d][scheme] for d in DATASET_ORDER]))
        for scheme in SCHEMES
    }
    rows.append(
        ["ALL AVG."]
        + [f"{averages[s]:.1f}" for s in SCHEMES]
    )

    checks = []
    fp_schemes = [s for s in SCHEMES if s not in ("zlib(gp)", "lwc+alp")]
    checks.append(
        shape_check(
            "ALP has the best average among floating-point encodings",
            all(
                averages["alp"] <= averages[s]
                for s in fp_schemes
                if s != "alp"
            ),
        )
    )
    alp_vs_chimp128 = sum(
        1
        for d in DATASET_ORDER
        if table[d]["alp"] <= table[d]["chimp128"]
    )
    checks.append(
        shape_check(
            f"ALP beats Chimp128 on {alp_vs_chimp128}/30 datasets "
            "(paper: 27/30; require >= 20)",
            alp_vs_chimp128 >= 20,
        )
    )
    alp_vs_pde = sum(
        1 for d in DATASET_ORDER if table[d]["alp"] <= table[d]["pde"]
    )
    checks.append(
        shape_check(
            f"ALP beats PDE on {alp_vs_pde}/30 datasets "
            "(paper: 27/30; require >= 20)",
            alp_vs_pde >= 20,
        )
    )
    cascade_ok = all(
        table[d]["lwc+alp"] <= table[d]["alp"] + 0.5 for d in DATASET_ORDER
    )
    checks.append(
        shape_check(
            "LWC+ALP never materially loses to plain ALP", cascade_ok
        )
    )
    checks.append(
        shape_check(
            "ALP_rd engages exactly on POI-lat/POI-lon",
            all(
                rd_used[d] == DATASETS[d].expects_rd for d in DATASET_ORDER
            ),
        )
    )
    count_gap = max(
        table[d]["alp"] - table[d]["pde"] for d in ("CMS/9", "Medicare/9")
    )
    checks.append(
        shape_check(
            f"ALP within ~2 bits of PDE on integer counts (gap {count_gap:.1f})",
            count_gap <= 4.0,
        )
    )

    report = format_table(
        headers,
        rows,
        title=f"Table 4 — bits/value, measured|paper (n={bench_n()})",
    )
    report += "\n" + "\n".join(checks)
    emit("table4_compression_ratio", report)

    assert all(c.startswith("[PASS]") for c in checks), "\n" + "\n".join(
        checks
    )
