"""Clean counterexample for RL9: one finish on every path."""

import os


def fill_and_release(pool, count, fill):
    buf = pool.acquire(count)
    try:
        fill(buf)
    finally:
        pool.release(buf)


def transfer_on_success(pool, count, fill):
    buf = pool.acquire(count)
    try:
        fill(buf)
    except BaseException:
        pool.release(buf)
        raise
    pool.transfer(buf)
    return buf


def return_escapes(pool, count):
    buf = pool.acquire(count)
    return buf  # ownership moves to the caller


def fd_closed(path):
    fd = os.open(path, os.O_RDONLY)
    try:
        return os.read(fd, 16)
    finally:
        os.close(fd)
