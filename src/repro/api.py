"""The unified public facade of the reproduction.

One import gives the whole pipeline — compression, on-disk storage,
datasets, and integrity tooling — behind a single options object::

    import numpy as np
    from repro import api

    values = np.round(np.random.default_rng(0).normal(20, 5, 100_000), 2)

    column = api.compress(values)                  # in-memory
    restored = api.decompress(column)

    api.write("col.alpc", values)                  # checksummed file (v3)
    reader = api.open("col.alpc")                  # lazy, verifying reader
    restored = api.read("col.alpc")

    report = api.verify("col.alpc")                # integrity walk
    api.repair("col.alpc", "col.fixed.alpc")       # drop corrupt sections

Every knob the layers used to take as drifting per-function keyword
lists is collected in :class:`CompressionOptions`, accepted uniformly by
:func:`compress`, :func:`write`, :func:`write_dataset` and the
underlying ``ColumnFileWriter``.  The older entry points
(``repro.compress``, ``write_column_file``, …) keep working —
superseded conveniences emit :class:`DeprecationWarning` pointing here.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

import numpy as np

from repro.core.compressor import (
    CompressedRowGroups,
    compress as _compress,
    compress_parallel as _compress_parallel,
    decompress as _decompress,
    decompress_parallel as _decompress_parallel,
)
from repro.core.constants import ROWGROUP_VECTORS, VECTOR_SIZE
from repro.storage.columnfile import ColumnFileReader, ColumnFileWriter
from repro.storage.dataset_dir import DatasetReader
from repro.storage.errors import (
    CorruptFileError,
    CorruptRowGroupError,
    IntegrityError,
)
from repro.storage.verify import (
    DatasetVerifyReport,
    FileVerifyReport,
    RepairReport,
    repair_column_file,
    verify_path,
)

__all__ = [
    "CompressedRowGroups",
    "CompressionOptions",
    "CorruptFileError",
    "CorruptRowGroupError",
    "IntegrityError",
    "compress",
    "decompress",
    "open",
    "open_dataset",
    "read",
    "repair",
    "verify",
    "write",
    "write_dataset",
]

#: Schemes :attr:`CompressionOptions.force_scheme` accepts (None = adaptive).
_SCHEMES = (None, "alp", "alprd")


@dataclass(frozen=True)
class CompressionOptions:
    """Every tuning knob of the pipeline, in one place.

    Attributes:
        vector_size: values per ALP vector (the paper's ``v``).
        rowgroup_vectors: vectors per row-group (the paper's ``w``).
        threads: worker threads for :func:`compress`; ``1`` is serial,
            more dispatches row-groups to a thread pool (bit-identical
            output either way).
        force_scheme: ``"alp"`` or ``"alprd"`` bypasses the adaptive
            ALP-vs-ALP_rd cutoff decision; ``None`` keeps it adaptive.
        integrity: write checksummed format v3 with atomic
            publish (the default); ``False`` writes the legacy v2
            layout without checksums.
    """

    vector_size: int = VECTOR_SIZE
    rowgroup_vectors: int = ROWGROUP_VECTORS
    threads: int = 1
    force_scheme: str | None = None
    integrity: bool = True

    def __post_init__(self) -> None:
        if self.force_scheme not in _SCHEMES:
            raise ValueError(
                f"force_scheme must be one of {_SCHEMES}, "
                f"got {self.force_scheme!r}"
            )
        if self.threads < 1:
            raise ValueError(f"threads must be >= 1, got {self.threads}")
        if self.rowgroup_vectors < 1:
            raise ValueError(
                f"rowgroup_vectors must be >= 1, got {self.rowgroup_vectors}"
            )


#: The default option set (adaptive scheme, integrity on).
DEFAULT_OPTIONS = CompressionOptions()


def compress(
    values: np.ndarray, options: CompressionOptions | None = None
) -> CompressedRowGroups:
    """Compress a float64 column under one options object.

    ``options.threads > 1`` routes through the thread-pooled
    compressor; the result is bit-identical to the serial path.
    """
    opts = options or DEFAULT_OPTIONS
    if opts.threads > 1:
        return _compress_parallel(
            values,
            threads=opts.threads,
            vector_size=opts.vector_size,
            rowgroup_vectors=opts.rowgroup_vectors,
            force_scheme=opts.force_scheme,
        )
    return _compress(
        values,
        vector_size=opts.vector_size,
        rowgroup_vectors=opts.rowgroup_vectors,
        force_scheme=opts.force_scheme,
    )


def decompress(
    column: CompressedRowGroups,
    options: CompressionOptions | None = None,
    *,
    out: np.ndarray | None = None,
) -> np.ndarray:
    """Decompress a column back to float64, bit-exactly.

    Like :func:`compress`, ``options.threads > 1`` routes through the
    thread-pooled decoder (row-groups decode into disjoint slices of one
    output array); the result is bit-identical to the serial path.
    ``out``, when given, must be a writable C-contiguous float64 array
    of exactly ``column.count`` values; the decode writes in place and
    allocates no output array.
    """
    opts = options or DEFAULT_OPTIONS
    if opts.threads > 1:
        return _decompress_parallel(column, threads=opts.threads, out=out)
    return _decompress(column, out=out)


def write(
    path: str | os.PathLike,
    values: np.ndarray,
    options: CompressionOptions | None = None,
) -> None:
    """Compress ``values`` into a column file (atomic, checksummed)."""
    with ColumnFileWriter(path, options=options or DEFAULT_OPTIONS) as writer:
        writer.write_values(values)


def open(
    path: str | os.PathLike, *, degraded: bool = False, mmap: bool = False
) -> ColumnFileReader:
    """Open a column file for verified random access and scans.

    With ``degraded=True`` bulk reads and range scans *quarantine*
    corrupt row-groups (skip + report via
    :meth:`ColumnFileReader.scan_report`) instead of raising.

    With ``mmap=True`` the file is memory-mapped and payloads decode
    straight out of the page cache with zero copies (v2 and small
    files silently fall back to the buffered path).  Mapped readers
    must be closed, and close refuses — with a typed
    ``BufferLifetimeError`` — while payload views are still alive; see
    ``docs/PERFORMANCE.md``, "zero-copy read path".
    """
    return ColumnFileReader(path, degraded=degraded, mmap=mmap)


def read(path: str | os.PathLike, *, degraded: bool = False) -> np.ndarray:
    """Decompress an entire column file to float64."""
    return ColumnFileReader(path, degraded=degraded).read_all()


def write_dataset(
    directory: str | os.PathLike,
    columns: dict[str, np.ndarray],
    options: CompressionOptions | None = None,
) -> None:
    """Compress a dict of equally-long columns into a dataset directory."""
    from repro.storage.dataset_dir import write_dataset as _write_dataset

    _write_dataset(directory, columns, options=options or DEFAULT_OPTIONS)


def open_dataset(
    directory: str | os.PathLike,
    *,
    degraded: bool = False,
    mmap: bool = False,
) -> DatasetReader:
    """Open a dataset directory for lazy per-column reads and queries.

    ``mmap=True`` applies :func:`open`'s zero-copy mapping to every
    column file the reader touches (with the same buffered fallback).
    """
    return DatasetReader(directory, degraded=degraded, mmap=mmap)


def verify(
    path: str | os.PathLike,
) -> FileVerifyReport | DatasetVerifyReport:
    """Walk a column file or dataset directory, reporting every bad section."""
    return verify_path(path)


def repair(
    source: str | os.PathLike, destination: str | os.PathLike
) -> RepairReport:
    """Rewrite a damaged column file, keeping every intact row-group."""
    return repair_column_file(source, destination)
