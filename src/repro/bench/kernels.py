"""Kernel-level micro-benchmarks: bit-packing, FFOR and the ALP vector codec.

``python -m repro.bench.kernels`` (or ``alp-repro bench --kernels``)
times the hot kernels the word-parallel rewrite targets, at the widths
that exercise its three code paths:

- width 4  — sub-byte fields, the generic scatter/gather path;
- width 16 — byte-aligned, the direct dtype-cast fast path;
- width 48 — byte-aligned but wider than any native dtype, the
  byte-column path.

Each width yields one ``pack`` record (compress = ``pack_bits``,
decompress = ``unpack_bits``) and one ``ffor`` record (compress =
``ffor_encode``, decompress = fused ``ffor_decode``); a
``kernels/alp-vector`` record times the end-to-end per-vector ALP
encode (level-two sampling + ALP_enc + FFOR) and decode (UNFFOR +
ALP_dec + patch), the paper's §4.2 micro-benchmark unit.  The ``pack``
records also carry the measured speedup over the retired bit-matrix
packer (:func:`repro.encodings.bitpack.pack_bits_bitmatrix`) in their
``counters``.

Two further records benchmark the encoded-domain *query* kernels
against the decode-then-aggregate baseline on real-shaped columns:

- ``kernels/q-sum`` — full-column SUM on a City-Temp column:
  ``compress_mbps`` is the fused path (modular-fold
  :func:`~repro.encodings.bitpack.unpack_sum` + once-per-vector
  scaling), ``decompress_mbps`` the decode-first path (UNFFOR +
  ALP_dec + ``np.sum``), and ``counters["query.sum_speedup_vs_decode"]``
  their ratio;
- ``kernels/q-cmp`` — a selective (98th-percentile) range COUNT on a
  Stocks-DE column: fused unpack-compare with FFOR-header vector
  skipping versus decode-then-mask, ratio under
  ``counters["query.cmp_speedup_vs_decode"]``.

Both query kernels are exception-light by construction (the datasets
are decimal columns ALP encodes with few exceptions), which is the
regime the encoded-domain paths target; ``--min-speedup`` lets CI pin
the ratios directly.

A ``kernels/q-table`` record benchmarks format v4 zone-map predicate
pushdown end to end: a selective (~1%) range scan over a two-column
table — ``compress_mbps`` the pruned ``TableFileReader.scan`` path,
``decompress_mbps`` the decode-everything-then-mask baseline, their
ratio under ``counters["table.scan_speedup_vs_decode"]`` (gated by
``--min-speedup`` like the other query kernels), and the fraction of
vectors never decoded under ``counters["table.vectors_skip_fraction"]``.

Records follow the ``BENCH_*.json`` schema (see
:mod:`repro.bench.records`): ``bits_per_value`` is the field width and
``compression_ratio`` is ``64 / width``, both deterministic, so the CI
regression gate's ratio check doubles as a layout invariant; the
``*_rel`` throughputs are calibration-anchored like every other record.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from repro.bench.records import BenchRecord
from repro.core.constants import VECTOR_SIZE

#: The widths benchmarked — one per pack/unpack code path (see module doc).
KERNEL_WIDTHS = (4, 16, 48)

#: The micro-benchmark unit: one L1-resident vector, as in the paper.
KERNEL_VECTOR_SIZE = VECTOR_SIZE

#: Vectors processed per timed call, so one call takes long enough that
#: ``perf_counter`` granularity and scheduler noise do not dominate.
KERNEL_VECTORS = 64

#: Column the encoded-domain SUM kernel is measured on (exception-light,
#: narrow residual widths — the fold regime of ``unpack_sum``).
QUERY_SUM_DATASET = "City-Temp"
#: Column the fused range-predicate kernel is measured on.
QUERY_CMP_DATASET = "Stocks-DE"
#: The range predicate keeps the top ``1 - QUERY_CMP_QUANTILE`` of the
#: column: selective enough that most vectors are header-rejected, the
#: case late materialization exists for.
QUERY_CMP_QUANTILE = 0.98


def _kernel_values(width: int) -> np.ndarray:
    """Deterministic uint64 test values that need exactly ``width`` bits."""
    rng = np.random.default_rng(0xA19 + width)
    count = KERNEL_VECTORS * KERNEL_VECTOR_SIZE
    if width == 0:
        return np.zeros(count, dtype=np.uint64)
    values = rng.integers(0, 1 << width, size=count, dtype=np.uint64)
    # Pin the top bit somewhere so bit_width_required(values) == width.
    values[0] = (1 << width) - 1
    return values


def _per_vector_mbps(fn, values_nbytes: int, repeats: int) -> float:
    """Median MB/s of a callable that processes all KERNEL_VECTORS."""
    from repro.bench.harness import time_callable

    result = time_callable(
        fn, values_nbytes // 8, repeats=repeats, stat="median"
    )
    return values_nbytes / result.seconds / 1e6


def _bench_pack(width: int, repeats: int, calibration: float) -> BenchRecord:
    """One pack/unpack record at ``width`` (+ bit-matrix speedup)."""
    from repro.encodings.bitpack import (
        pack_bits,
        pack_bits_bitmatrix,
        unpack_bits,
    )

    values = _kernel_values(width)
    vectors = [
        values[start : start + KERNEL_VECTOR_SIZE]
        for start in range(0, values.size, KERNEL_VECTOR_SIZE)
    ]
    payloads = [pack_bits(v, width) for v in vectors]

    pack_mbps = _per_vector_mbps(
        lambda: [pack_bits(v, width) for v in vectors],
        values.nbytes,
        repeats,
    )
    bitmatrix_mbps = _per_vector_mbps(
        lambda: [pack_bits_bitmatrix(v, width) for v in vectors],
        values.nbytes,
        repeats,
    )
    unpack_mbps = _per_vector_mbps(
        lambda: [
            unpack_bits(p, width, KERNEL_VECTOR_SIZE) for p in payloads
        ],
        values.nbytes,
        repeats,
    )
    return BenchRecord(
        dataset=f"kernels/w{width:02d}",
        codec="pack",
        n=int(values.size),
        bits_per_value=float(width),
        compression_ratio=64.0 / width,
        compress_mbps=pack_mbps,
        decompress_mbps=unpack_mbps,
        compress_rel=pack_mbps / calibration,
        decompress_rel=unpack_mbps / calibration,
        counters={
            "pack.bitmatrix_mbps": bitmatrix_mbps,
            "pack.speedup_vs_bitmatrix": pack_mbps / bitmatrix_mbps,
        },
    )


def _bench_ffor(width: int, repeats: int, calibration: float) -> BenchRecord:
    """One FFOR encode/decode record with ``width``-bit residuals."""
    from repro.encodings.ffor import ffor_decode, ffor_encode

    residuals = _kernel_values(width).astype(np.int64)
    base = 1 << 52  # a far-from-zero reference, as ALP integers have
    values = residuals + base
    vectors = [
        values[start : start + KERNEL_VECTOR_SIZE]
        for start in range(0, values.size, KERNEL_VECTOR_SIZE)
    ]
    encoded = [ffor_encode(v) for v in vectors]

    encode_mbps = _per_vector_mbps(
        lambda: [ffor_encode(v) for v in vectors], values.nbytes, repeats
    )
    decode_mbps = _per_vector_mbps(
        lambda: [ffor_decode(e) for e in encoded], values.nbytes, repeats
    )
    return BenchRecord(
        dataset=f"kernels/w{width:02d}",
        codec="ffor",
        n=int(values.size),
        bits_per_value=float(width),
        compression_ratio=64.0 / width,
        compress_mbps=encode_mbps,
        decompress_mbps=decode_mbps,
        compress_rel=encode_mbps / calibration,
        decompress_rel=decode_mbps / calibration,
    )


def _bench_alp_vector(repeats: int, calibration: float) -> BenchRecord:
    """End-to-end per-vector ALP encode/decode (§4.2 protocol)."""
    from repro.bench.harness import alp_vector_speed
    from repro.data import get_dataset

    values = get_dataset("City-Temp", n=KERNEL_VECTOR_SIZE)
    compress_speed, decompress_speed = alp_vector_speed(
        values, repeats=repeats
    )
    compress_mbps = values.nbytes / compress_speed.seconds / 1e6
    decompress_mbps = values.nbytes / decompress_speed.seconds / 1e6
    from repro.core.alp import alp_encode_vector
    from repro.core.sampler import find_best_combination

    combo, _ = find_best_combination(values)
    encoded = alp_encode_vector(values, combo.exponent, combo.factor)
    bits_per_value = encoded.bits_per_value()
    return BenchRecord(
        dataset="kernels/alp-vector",
        codec="alp",
        n=int(values.size),
        bits_per_value=bits_per_value,
        compression_ratio=64.0 / bits_per_value,
        compress_mbps=compress_mbps,
        decompress_mbps=decompress_mbps,
        compress_rel=compress_mbps / calibration,
        decompress_rel=decompress_mbps / calibration,
    )


def _query_column(name: str) -> tuple[np.ndarray, list, float]:
    """A dataset column ALP-encoded vector by vector for query kernels.

    Returns ``(values, vectors, bits_per_value)``: the raw doubles, the
    :class:`~repro.core.alp.AlpVector` list (one per
    ``KERNEL_VECTOR_SIZE`` chunk) and the measured storage footprint.
    """
    from repro.core.alp import alp_encode_rowgroup
    from repro.core.sampler import find_best_combination
    from repro.data import get_dataset

    values = get_dataset(name, n=KERNEL_VECTORS * KERNEL_VECTOR_SIZE)
    combo, _ = find_best_combination(values)
    vectors = alp_encode_rowgroup(
        values, combo.exponent, combo.factor, KERNEL_VECTOR_SIZE
    )
    bits = sum(v.size_bits() for v in vectors) / values.size
    return values, vectors, bits


def _bench_query_sum(repeats: int, calibration: float) -> BenchRecord:
    """Encoded-domain SUM vs decode-then-aggregate (``kernels/q-sum``)."""
    from repro.core.alp import alp_decode_vector, alp_sum_vector

    values, vectors, bits = _query_column(QUERY_SUM_DATASET)

    def fused() -> float:
        return sum(alp_sum_vector(v) for v in vectors)

    def decode_first() -> float:
        return sum(float(np.sum(alp_decode_vector(v))) for v in vectors)

    fused_mbps = _per_vector_mbps(fused, values.nbytes, repeats)
    decode_mbps = _per_vector_mbps(decode_first, values.nbytes, repeats)
    return BenchRecord(
        dataset="kernels/q-sum",
        codec="alp",
        n=int(values.size),
        bits_per_value=bits,
        compression_ratio=64.0 / bits,
        compress_mbps=fused_mbps,
        decompress_mbps=decode_mbps,
        compress_rel=fused_mbps / calibration,
        decompress_rel=decode_mbps / calibration,
        counters={"query.sum_speedup_vs_decode": fused_mbps / decode_mbps},
    )


def _bench_query_cmp(repeats: int, calibration: float) -> BenchRecord:
    """Fused selective range COUNT vs decode-then-mask (``kernels/q-cmp``)."""
    from repro.core.predicates import count_vector_encoded
    from repro.core.alp import alp_decode_vector

    values, vectors, bits = _query_column(QUERY_CMP_DATASET)
    low = float(np.quantile(values, QUERY_CMP_QUANTILE))
    high = float(values.max())

    def fused() -> int:
        return sum(count_vector_encoded(v, low, high) for v in vectors)

    def decode_first() -> int:
        total = 0
        for vector in vectors:
            decoded = alp_decode_vector(vector)
            total += int(((decoded >= low) & (decoded <= high)).sum())
        return total

    fused_mbps = _per_vector_mbps(fused, values.nbytes, repeats)
    decode_mbps = _per_vector_mbps(decode_first, values.nbytes, repeats)
    return BenchRecord(
        dataset="kernels/q-cmp",
        codec="alp",
        n=int(values.size),
        bits_per_value=bits,
        compression_ratio=64.0 / bits,
        compress_mbps=fused_mbps,
        decompress_mbps=decode_mbps,
        compress_rel=fused_mbps / calibration,
        decompress_rel=decode_mbps / calibration,
        counters={"query.cmp_speedup_vs_decode": fused_mbps / decode_mbps},
    )


#: Rows of the v4 table the zone-map pushdown kernel scans.
TABLE_BENCH_ROWS = 256 * KERNEL_VECTOR_SIZE
#: Selectivity of its range predicate (fraction of rows kept).
TABLE_BENCH_SELECTIVITY = 0.01


def _bench_query_table(repeats: int, calibration: float) -> BenchRecord:
    """Zone-map-pruned v4 table scan vs decode-everything
    (``kernels/q-table``)."""
    import os
    import tempfile

    from repro import obs
    from repro.query.table import FilterPredicate
    from repro.storage.schema import Column, Schema
    from repro.storage.tablefile import TableFileReader, TableFileWriter

    n = TABLE_BENCH_ROWS
    rng = np.random.default_rng(0xA19)
    # A monotone predicate column (the time-series shape zone maps
    # exist for) plus a decimal value column.
    ts = np.cumsum(rng.random(n) + 0.5)
    value = np.round(rng.normal(20, 5, n), 2)
    lo_row = int(n * (0.5 - TABLE_BENCH_SELECTIVITY / 2))
    hi_row = int(n * (0.5 + TABLE_BENCH_SELECTIVITY / 2)) - 1
    low, high = float(ts[lo_row]), float(ts[hi_row])
    predicate = FilterPredicate("ts", low=low, high=high)

    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "qtable.alpc")
        schema = Schema((Column("ts"), Column("value")))
        with TableFileWriter(path, schema) as writer:
            writer.write_rows({"ts": ts, "value": value})
        with TableFileReader(path) as reader:

            def pruned() -> np.ndarray:
                values, _ = reader.scan(["value"], predicate)
                return values["value"]

            def decode_everything() -> np.ndarray:
                values, _ = reader.read_columns(["ts", "value"])
                mask = (values["ts"] >= low) & (values["ts"] <= high)
                return values["value"][mask]

            # The pruned scan must be bit-identical to the full scan
            # before its throughput means anything.
            if not np.array_equal(pruned(), decode_everything()):
                raise AssertionError(
                    "pruned table scan disagrees with decode-everything"
                )

            nbytes = ts.nbytes + value.nbytes
            pruned_mbps = _per_vector_mbps(pruned, nbytes, repeats)
            decode_mbps = _per_vector_mbps(
                decode_everything, nbytes, repeats
            )

            # Skip fraction, measured from the reader's own pruning
            # counters over one observed scan.
            was_enabled = obs.enabled()
            obs.enable()
            try:
                before = obs.snapshot()["counters"]
                pruned()
                after = obs.snapshot()["counters"]
            finally:
                if not was_enabled:
                    obs.disable()

            def delta(name: str) -> float:
                return float(after.get(name, 0)) - float(
                    before.get(name, 0)
                )

            skipped = delta("tablefile.vectors_pruned")
            decoded = delta("tablefile.vectors_decoded")
            skip_fraction = skipped / max(skipped + decoded, 1.0)

        compressed_bytes = os.path.getsize(path)

    bits = 8.0 * compressed_bytes / n
    return BenchRecord(
        dataset="kernels/q-table",
        codec="alp",
        n=n,
        bits_per_value=bits,
        compression_ratio=(2 * 64.0) / bits if bits else 0.0,
        compress_mbps=pruned_mbps,
        decompress_mbps=decode_mbps,
        compress_rel=pruned_mbps / calibration,
        decompress_rel=decode_mbps / calibration,
        counters={
            "table.scan_speedup_vs_decode": pruned_mbps / decode_mbps,
            "table.vectors_skip_fraction": skip_fraction,
        },
    )


def _bench_io(repeats: int, calibration: float) -> BenchRecord:
    """Cold-file read pipelines: the ``kernels/io`` record.

    ``compress_mbps`` times the **retired** pipeline, step for step —
    buffered open, a ``bytes(...)`` copy per payload, the scalar
    :func:`~repro.storage.integrity.crc32c_reference` checksum, a fresh
    decode allocation per row-group and a final ``concatenate`` —
    against ``decompress_mbps``, the current one: ``mmap=True`` open,
    checksums over zero-copy ``memoryview`` slices via the
    lane-parallel CRC, and every row-group decoding straight into one
    reused caller buffer.  Their ratio is pinned by ``--min-speedup``
    as ``counters["io.coldread_speedup_vs_decode"]``; the counters
    also carry the warm-read throughput (reader kept open, checksum
    verdicts cached) and the in-memory decode-into vs decode-alloc
    ratio, isolating the allocation term from the I/O term.
    """
    import shutil
    import tempfile

    from repro.core.compressor import (
        CompressedRowGroups,
        compress,
        decompress,
    )
    from repro.data import get_dataset
    from repro.storage.columnfile import ColumnFileReader, ColumnFileWriter
    from repro.storage.integrity import crc32c_reference
    from repro.storage.serializer import deserialize_rowgroup, empty_stats

    values = get_dataset(
        QUERY_SUM_DATASET, n=KERNEL_VECTORS * KERNEL_VECTOR_SIZE
    )
    tmpdir = tempfile.mkdtemp(prefix="alp-bench-io-")
    path = f"{tmpdir}/io.alpc"
    try:
        with ColumnFileWriter(path) as writer:
            writer.write_values(values)

        probe = ColumnFileReader(path, mmap=True)
        vector_size = probe.vector_size
        file_bits = sum(m.length * 8 for m in probe.metadata)
        probe.close()

        def legacy_cold_read() -> np.ndarray:
            reader = ColumnFileReader(path)
            chunks = []
            for index, meta in enumerate(reader.metadata):
                payload = bytes(reader.rowgroup_payload(index))
                if crc32c_reference(payload) != meta.payload_crc:
                    raise ValueError("checksum mismatch")
                rowgroup, _ = deserialize_rowgroup(payload, 0)
                column = CompressedRowGroups(
                    rowgroups=(rowgroup,),
                    count=rowgroup.count,
                    vector_size=vector_size,
                    stats=empty_stats(),
                )
                chunks.append(decompress(column))
            reader.close()
            return np.concatenate(chunks)

        target = np.empty(values.size, dtype=np.float64)

        def mmap_cold_read() -> np.ndarray:
            reader = ColumnFileReader(path, mmap=True)
            reader.read_all(out=target)
            reader.close()
            return target

        legacy_mbps = _per_vector_mbps(
            legacy_cold_read, values.nbytes, repeats
        )
        mmap_mbps = _per_vector_mbps(mmap_cold_read, values.nbytes, repeats)

        warm_reader = ColumnFileReader(path, mmap=True)
        warm_reader.read_all(out=target)  # prime checksum verdicts
        warm_mbps = _per_vector_mbps(
            lambda: warm_reader.read_all(out=target), values.nbytes, repeats
        )
        warm_reader.close()

        column = compress(values)
        into_mbps = _per_vector_mbps(
            lambda: decompress(column, out=target), values.nbytes, repeats
        )
        alloc_mbps = _per_vector_mbps(
            lambda: decompress(column), values.nbytes, repeats
        )
    finally:
        shutil.rmtree(tmpdir, ignore_errors=True)

    bits = file_bits / values.size
    return BenchRecord(
        dataset="kernels/io",
        codec="read",
        n=int(values.size),
        bits_per_value=bits,
        compression_ratio=64.0 / bits,
        compress_mbps=legacy_mbps,
        decompress_mbps=mmap_mbps,
        compress_rel=legacy_mbps / calibration,
        decompress_rel=mmap_mbps / calibration,
        counters={
            "io.coldread_speedup_vs_decode": mmap_mbps / legacy_mbps,
            "io.warm_read_mbps": warm_mbps,
            "io.decode_into_speedup_vs_alloc": into_mbps / alloc_mbps,
        },
    )


def kernel_bench_records(repeats: int = 5) -> list[BenchRecord]:
    """All kernel micro-benchmark records (see module docstring).

    The calibration anchoring the ``*_rel`` fields is measured once
    before and once after the kernel sweep and averaged, the same
    drift-compensation idea as the per-record sandwich in
    :func:`repro.bench.harness.bench_codec_structured`.
    """
    from repro.bench.harness import calibration_mbps

    cal_before = calibration_mbps(repeats=repeats)
    raw: list[BenchRecord] = []
    for width in KERNEL_WIDTHS:
        raw.append(_bench_pack(width, repeats, cal_before))
        raw.append(_bench_ffor(width, repeats, cal_before))
    raw.append(_bench_alp_vector(repeats, cal_before))
    raw.append(_bench_query_sum(repeats, cal_before))
    raw.append(_bench_query_cmp(repeats, cal_before))
    raw.append(_bench_query_table(repeats, cal_before))
    raw.append(_bench_io(repeats, cal_before))
    calibration = (cal_before + calibration_mbps(repeats=repeats)) / 2

    # Re-anchor every record on the averaged calibration.
    return [
        BenchRecord(
            dataset=record.dataset,
            codec=record.codec,
            n=record.n,
            bits_per_value=record.bits_per_value,
            compression_ratio=record.compression_ratio,
            compress_mbps=record.compress_mbps,
            decompress_mbps=record.decompress_mbps,
            compress_rel=record.compress_mbps / calibration,
            decompress_rel=record.decompress_mbps / calibration,
            spans=record.spans,
            counters=record.counters,
        )
        for record in raw
    ]


#: Counter suffix marking a fused-vs-decode throughput ratio that
#: ``--min-speedup`` (and the CI ``query-kernels`` job) checks.
SPEEDUP_COUNTER_SUFFIX = "_speedup_vs_decode"


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.kernels",
        description="kernel micro-benchmarks (pack/unpack, FFOR, ALP vector)",
    )
    parser.add_argument(
        "--repeats", type=int, default=5, help="timing repeats (default 5)"
    )
    parser.add_argument(
        "--out",
        default=None,
        help="also write the records as a BENCH_*.json document",
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=None,
        help=(
            "fail (exit 1) when any *_speedup_vs_decode counter — the "
            "fused-query vs decode-first throughput ratios — is below "
            "this value"
        ),
    )
    args = parser.parse_args(argv)
    records = kernel_bench_records(repeats=args.repeats)
    for record in records:
        extra = ""
        speedup = record.counters.get("pack.speedup_vs_bitmatrix")
        if speedup is not None:
            extra = f"  ({speedup:.1f}x vs bit-matrix)"
        for name, value in record.counters.items():
            if name.endswith(SPEEDUP_COUNTER_SUFFIX):
                extra = f"  ({value:.2f}x fused vs decode-first)"
        print(
            f"{record.dataset:18s} {record.codec:5s} "
            f"C {record.compress_mbps:8.1f} MB/s  "
            f"D {record.decompress_mbps:8.1f} MB/s{extra}"
        )
    if args.out:
        from repro.bench.harness import calibration_mbps
        from repro.bench.records import write_bench_json

        config = {
            "repeats": args.repeats,
            "widths": list(KERNEL_WIDTHS),
            "vectors": KERNEL_VECTORS,
            "vector_size": KERNEL_VECTOR_SIZE,
        }
        write_bench_json(
            args.out, records, config, calibration_mbps(repeats=args.repeats)
        )
        print(f"wrote {len(records)} records to {args.out}")
    if args.min_speedup is not None:
        failures = []
        for record in records:
            for name, value in record.counters.items():
                if (
                    name.endswith(SPEEDUP_COUNTER_SUFFIX)
                    and value < args.min_speedup
                ):
                    failures.append(
                        f"{record.dataset} {name} = {value:.2f}x "
                        f"< required {args.min_speedup:.2f}x"
                    )
        if failures:
            for failure in failures:
                print(f"[FAIL] {failure}")
            return 1
        print(
            f"all fused-query speedups >= {args.min_speedup:.2f}x"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
