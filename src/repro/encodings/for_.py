"""Plain Frame-Of-Reference encoding (FOR + BP as two separate kernels).

FOR subtracts the vector minimum ("frame of reference") from every value
so that the residuals are small non-negative integers, then bit-packs
them.  The fused variant lives in :mod:`repro.encodings.ffor`; this
module is the *unfused* reference the paper's Figure 5 compares against,
and it is also reused to compress dictionary codes and RLE run lengths.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.constants import U64_MASK
from repro.encodings.bitpack import pack_bits, unpack_bits


@dataclass(frozen=True)
class ForEncoded:
    """A FOR-encoded integer vector.

    Attributes:
        payload: bit-packed residuals (``value - reference``).
        reference: the vector minimum, stored once per vector.
        bit_width: width of each packed residual.
        count: number of encoded values.
    """

    payload: bytes
    reference: int
    bit_width: int
    count: int

    def size_bits(self) -> int:
        """Storage footprint: packed payload + 64-bit reference + 8-bit width."""
        return len(self.payload) * 8 + 64 + 8


def for_encode(values: np.ndarray) -> ForEncoded:
    """Encode a signed-integer vector with FOR + bit-packing."""
    values = np.ascontiguousarray(values, dtype=np.int64)
    if values.size == 0:
        return ForEncoded(payload=b"", reference=0, bit_width=0, count=0)
    reference = int(values.min())
    residuals = values.view(np.uint64) - np.uint64(reference & U64_MASK)
    # Subtraction in uint64 wraps correctly for negative references.  One
    # reduction serves width computation and pack validation alike.  The
    # view is a bit reinterpretation (no copy); astype(np.uint64) would
    # be a value-wrapping cast of the negative values.
    residual_max = int(residuals.max())
    width = residual_max.bit_length()
    payload = pack_bits(residuals, width, max_value=residual_max)
    return ForEncoded(
        payload=payload, reference=reference, bit_width=width, count=values.size
    )


def for_decode(encoded: ForEncoded) -> np.ndarray:
    """Decode a :class:`ForEncoded` vector back to int64 (unfused: two passes)."""
    residuals = unpack_bits(encoded.payload, encoded.bit_width, encoded.count)
    # Separate, materialized add pass — this is precisely the extra
    # load/store the fused FFOR kernel removes.  The add happens in uint64
    # so that negative references wrap back losslessly.
    out = residuals + np.uint64(encoded.reference & U64_MASK)
    return out.view(np.int64)
