"""Columnar storage: serialization and a skippable column-file format.

The paper's central systems argument for lightweight encodings is that —
unlike block-based general-purpose compression — one can *skip through*
compressed data at vector granularity, enabling predicate push-down in
scans.  This subpackage makes that concrete:

- :mod:`repro.storage.serializer` — byte-level (de)serialization of
  compressed row-groups (every dataclass in :mod:`repro.core` has an
  exact binary layout here),
- :mod:`repro.storage.columnfile` — an on-disk column format with
  per-row-group and per-vector zone maps, offset indexes, and a scan
  API that skips non-qualifying row-groups/vectors without touching
  (let alone decompressing) their bytes,
- :mod:`repro.storage.integrity` / :mod:`repro.storage.errors` —
  CRC32C checksums (format v3) and the typed corruption errors the
  verifying read path raises,
- :mod:`repro.storage.verify` — section-by-section integrity walks and
  copy-intact-row-groups repair (``alp-repro verify`` / ``repair``).

See ``docs/STORAGE.md`` for the v3 byte layout and the quarantine
semantics of degraded reads.
"""

from repro.storage.dataset_dir import DatasetReader, write_dataset
from repro.storage.columnfile import (
    ColumnFileReader,
    ColumnFileWriter,
    QuarantinedRowGroup,
    RowGroupMeta,
    ScanReport,
    VectorZone,
    read_column_file,
    write_column_file,
)
from repro.storage.errors import (
    CorruptFileError,
    CorruptRowGroupError,
    IntegrityError,
)
from repro.storage.integrity import crc32c
from repro.storage.verify import (
    DatasetVerifyReport,
    FileVerifyReport,
    RepairReport,
    repair_column_file,
    verify_column_file,
    verify_dataset,
    verify_path,
)
from repro.storage.serializer import (
    deserialize_rowgroup,
    serialize_rowgroup,
)
from repro.storage.serializer_f32 import (
    deserialize_float_column,
    serialize_float_column,
)

__all__ = [
    "ColumnFileReader",
    "ColumnFileWriter",
    "CorruptFileError",
    "CorruptRowGroupError",
    "DatasetReader",
    "DatasetVerifyReport",
    "FileVerifyReport",
    "IntegrityError",
    "QuarantinedRowGroup",
    "RepairReport",
    "RowGroupMeta",
    "ScanReport",
    "VectorZone",
    "crc32c",
    "deserialize_float_column",
    "deserialize_rowgroup",
    "read_column_file",
    "repair_column_file",
    "serialize_float_column",
    "serialize_rowgroup",
    "verify_column_file",
    "verify_dataset",
    "verify_path",
    "write_column_file",
    "write_dataset",
]
