"""Ablations of ALP's design choices (DESIGN.md §5).

Each ablation isolates one decision the paper argues for and measures
what reverting it costs:

1. fast rounding (sweet-spot add/sub) vs library rounding — same
   results, and the sweet-spot trick must not be slower;
2. one (e, f) per vector vs one exponent per value (PDE-style) — the
   per-value exponent stream costs strictly more bits on decimal data;
3. the trailing-zero factor f — disabling it (forcing f = 0) inflates
   the FFOR bit width exactly as Section 2.6 predicts;
4. exception placeholder: first-encoded vs zero — the zero placeholder
   can widen the FFOR range and must never win;
5. ALP_rd skewed dictionary width b = 0..3 — the adaptive choice
   matches the best fixed size on POI data.
"""

from __future__ import annotations

import numpy as np

from repro.bench.harness import bench_n, time_callable
from repro.bench.report import format_table, shape_check
from repro.core.alp import alp_encode_vector, estimate_size_bits
from repro.core.constants import VECTOR_SIZE
from repro.core.fastround import fast_round
from repro.core.sampler import find_best_combination
from repro.data import get_dataset

ABLATION_DATASETS = ("City-Temp", "Stocks-USA", "Btc-Price", "Dew-Temp")


def _ablate_fastround():
    rng = np.random.default_rng(0)
    values = rng.uniform(-1e9, 1e9, 100_000)
    assert np.array_equal(fast_round(values), np.round(values).astype(np.int64))
    fast = time_callable(lambda: fast_round(values), values.size, repeats=5)
    lib = time_callable(
        lambda: np.round(values).astype(np.int64), values.size, repeats=5
    )
    return fast.values_per_second, lib.values_per_second


def _ablate_exponent_granularity(dataset_cache):
    """Per-vector (e, f) vs per-value exponents on decimal data."""
    n = min(bench_n(), 16_384)
    out = {}
    for name in ABLATION_DATASETS:
        values = dataset_cache(name, n)
        per_vector_bits = 0
        for start in range(0, values.size, VECTOR_SIZE):
            chunk = values[start : start + VECTOR_SIZE]
            combo, _ = find_best_combination(chunk)
            per_vector_bits += alp_encode_vector(
                chunk, combo.exponent, combo.factor
            ).size_bits()
        # PDE-style: identical integer payload, plus a 5-bit exponent per
        # value instead of 16 bits per 1024-value vector.
        per_value_bits = per_vector_bits + values.size * 5 - (
            16 * ((values.size + VECTOR_SIZE - 1) // VECTOR_SIZE)
        )
        out[name] = (per_vector_bits / values.size, per_value_bits / values.size)
    return out


def _ablate_factor(dataset_cache):
    """Best (e, f) vs best (e, 0): the factor's bit-width savings."""
    n = min(bench_n(), 16_384)
    out = {}
    for name in ABLATION_DATASETS:
        values = dataset_cache(name, n)
        with_factor = 0
        without_factor = 0
        for start in range(0, values.size, VECTOR_SIZE):
            chunk = values[start : start + VECTOR_SIZE]
            combo, _ = find_best_combination(chunk)
            with_factor += estimate_size_bits(
                chunk, combo.exponent, combo.factor
            )
            # Same exponent, factor forced to 0 (no trailing-zero cut).
            without_factor += estimate_size_bits(chunk, combo.exponent, 0)
        out[name] = (with_factor / values.size, without_factor / values.size)
    return out


def _ablate_placeholder():
    """First-encoded placeholder vs zero placeholder for exceptions."""
    rng = np.random.default_rng(1)
    # Values around 1e6 with exceptions: a zero placeholder drags the FFOR
    # minimum to 0 and the bit width up.
    values = np.round(rng.uniform(1e6, 1e6 + 100, VECTOR_SIZE), 2)
    values[[5, 600]] = np.pi
    vector = alp_encode_vector(values, 14, 12)

    from repro.core.alp import alp_analyze
    from repro.encodings.ffor import ffor_encode

    encoded, exceptions = alp_analyze(values, 14, 12)
    zeroed = np.where(exceptions, 0, encoded)
    zero_width = ffor_encode(zeroed).bit_width
    return vector.ffor.bit_width, zero_width


def _ablate_rd_dictionary():
    """Adaptive skewed-dictionary size vs fixed b on POI data."""
    from repro.alputil.bits import double_to_bits
    from repro.core.alprd import find_best_cut
    from repro.encodings.dictionary import SkewedDictionary

    values = get_dataset("POI-lat", n=8192)
    bits = double_to_bits(values)
    adaptive = find_best_cut(bits[:VECTOR_SIZE])
    results = {}
    left = bits >> np.uint64(adaptive.right_bit_width)
    for b in range(4):
        size = 1 << b
        from collections import Counter

        ranked = [v for v, _ in Counter(left[:VECTOR_SIZE].tolist()).most_common(size)]
        dictionary = SkewedDictionary(
            entries=np.asarray(ranked, dtype=np.uint16),
            code_width=max(int(len(ranked) - 1).bit_length(), 0),
        )
        _, exc_positions, _ = dictionary.encode(left)
        bits_per_value = (
            adaptive.right_bit_width
            + dictionary.code_width
            + exc_positions.size / left.size * 32
        )
        results[b] = bits_per_value
    adaptive_b = max(int(adaptive.dictionary.entries.size - 1).bit_length(), 0)
    return results, adaptive_b


def test_ablations(benchmark, emit, dataset_cache):
    (
        (fast_speed, lib_speed),
        granularity,
        factor,
        (first_width, zero_width),
        (rd_sizes, adaptive_b),
    ) = benchmark.pedantic(
        lambda: (
            _ablate_fastround(),
            _ablate_exponent_granularity(dataset_cache),
            _ablate_factor(dataset_cache),
            _ablate_placeholder(),
            _ablate_rd_dictionary(),
        ),
        rounds=1,
        iterations=1,
    )

    rows = [
        ["fast_round vs np.round (Mv/s)", fast_speed / 1e6, lib_speed / 1e6],
    ]
    for name in ABLATION_DATASETS:
        rows.append(
            [f"per-vector vs per-value e ({name}, bits/val)"]
            + list(granularity[name])
        )
    for name in ABLATION_DATASETS:
        rows.append(
            [f"factor f on vs off ({name}, est. bits/val)"]
            + list(factor[name])
        )
    rows.append(
        ["placeholder first-encoded vs zero (FFOR width)", float(first_width), float(zero_width)]
    )
    for b, size in sorted(rd_sizes.items()):
        rows.append([f"ALP_rd dict b={b} (bits/val)", size, ""])

    factor_helps = sum(
        1 for name in ABLATION_DATASETS if factor[name][0] < factor[name][1]
    )
    checks = [
        # In C++ the sweet-spot trick wins because round() has no SIMD
        # instruction; numpy's np.round is already a vector kernel, so
        # the transferable claims are bit-identical output (asserted in
        # _ablate_fastround) and the same speed class.
        shape_check(
            "fast rounding in the same speed class as library rounding "
            f"({fast_speed / lib_speed:.2f}x, require >= 0.4x)",
            fast_speed >= lib_speed * 0.4,
        ),
        shape_check(
            "per-vector (e,f) strictly cheaper than per-value exponents "
            "on every dataset",
            all(
                granularity[n][0] < granularity[n][1]
                for n in ABLATION_DATASETS
            ),
        ),
        shape_check(
            f"the factor f reduces estimated size on {factor_helps}/"
            f"{len(ABLATION_DATASETS)} datasets (require > half)",
            factor_helps > len(ABLATION_DATASETS) // 2,
        ),
        shape_check(
            "first-encoded placeholder never wider than zero placeholder",
            first_width <= zero_width,
        ),
        shape_check(
            "adaptive ALP_rd dictionary matches the best fixed size",
            rd_sizes[adaptive_b] <= min(rd_sizes.values()) + 0.5,
        ),
    ]

    report = format_table(
        ["ablation", "chosen design", "ablated"],
        rows,
        float_format="{:.2f}",
        title="Design-choice ablations",
    )
    report += "\n" + "\n".join(checks)
    emit("ablations", report)
    assert all(c.startswith("[PASS]") for c in checks), "\n" + "\n".join(checks)
