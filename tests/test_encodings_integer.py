"""Unit tests for FOR, FFOR, Delta, RLE and Dictionary encodings."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.encodings.delta import (
    delta_decode,
    delta_encode,
    zigzag_decode,
    zigzag_encode,
)
from repro.encodings.dictionary import (
    SkewedDictionary,
    dictionary_decode,
    dictionary_encode,
)
from repro.encodings.ffor import (
    ffor_decode,
    ffor_decode_unfused,
    ffor_encode,
)
from repro.encodings.for_ import for_decode, for_encode
from repro.encodings.rle import rle_decode, rle_encode, run_boundaries

int64s = st.integers(min_value=-(2**62), max_value=2**62 - 1)


class TestFor:
    def test_roundtrip_basic(self):
        values = np.array([100, 101, 105, 100], dtype=np.int64)
        assert np.array_equal(for_decode(for_encode(values)), values)

    def test_constant_vector_needs_zero_bits(self):
        encoded = for_encode(np.full(1024, 42, dtype=np.int64))
        assert encoded.bit_width == 0
        assert encoded.payload == b""

    def test_negative_reference(self):
        values = np.array([-50, -49, -10], dtype=np.int64)
        encoded = for_encode(values)
        assert encoded.reference == -50
        assert np.array_equal(for_decode(encoded), values)

    def test_empty(self):
        encoded = for_encode(np.empty(0, dtype=np.int64))
        assert for_decode(encoded).size == 0

    def test_tight_range_gives_narrow_width(self):
        values = np.arange(1000, 1008, dtype=np.int64)
        assert for_encode(values).bit_width == 3

    @given(st.lists(int64s, max_size=200))
    def test_roundtrip_random(self, xs):
        values = np.array(xs, dtype=np.int64)
        assert np.array_equal(for_decode(for_encode(values)), values)


class TestFfor:
    def test_fused_and_unfused_agree(self):
        rng = np.random.default_rng(0)
        values = rng.integers(-(10**9), 10**9, size=1024).astype(np.int64)
        encoded = ffor_encode(values)
        assert np.array_equal(ffor_decode(encoded), values)
        assert np.array_equal(ffor_decode_unfused(encoded), values)

    def test_constant(self):
        values = np.full(10, -7, dtype=np.int64)
        encoded = ffor_encode(values)
        assert encoded.bit_width == 0
        assert np.array_equal(ffor_decode(encoded), values)
        assert np.array_equal(ffor_decode_unfused(encoded), values)

    def test_size_bits_counts_header(self):
        encoded = ffor_encode(np.array([0, 1], dtype=np.int64))
        assert encoded.size_bits() == 8 + 64 + 8  # 2 bits padded to a byte

    @given(st.lists(int64s, max_size=300))
    @settings(max_examples=50)
    def test_roundtrip_random(self, xs):
        values = np.array(xs, dtype=np.int64)
        encoded = ffor_encode(values)
        assert np.array_equal(ffor_decode(encoded), values)
        assert np.array_equal(ffor_decode_unfused(encoded), values)


class TestZigzag:
    def test_small_values(self):
        values = np.array([0, -1, 1, -2, 2], dtype=np.int64)
        assert zigzag_encode(values).tolist() == [0, 1, 2, 3, 4]

    @given(st.lists(int64s, max_size=100))
    def test_roundtrip(self, xs):
        values = np.array(xs, dtype=np.int64)
        assert np.array_equal(zigzag_decode(zigzag_encode(values)), values)


class TestDelta:
    def test_roundtrip_monotonic(self):
        values = np.arange(0, 5000, 3, dtype=np.int64)
        assert np.array_equal(delta_decode(delta_encode(values)), values)

    def test_sorted_data_compresses_well(self):
        values = np.arange(10**6, 10**6 + 1024, dtype=np.int64)
        encoded = delta_encode(values)
        assert encoded.bit_width <= 2

    def test_single_value(self):
        values = np.array([99], dtype=np.int64)
        assert np.array_equal(delta_decode(delta_encode(values)), values)

    def test_empty(self):
        assert delta_decode(delta_encode(np.empty(0, dtype=np.int64))).size == 0

    @given(st.lists(st.integers(-(2**40), 2**40), max_size=200))
    def test_roundtrip_random(self, xs):
        values = np.array(xs, dtype=np.int64)
        assert np.array_equal(delta_decode(delta_encode(values)), values)


class TestRle:
    def test_run_boundaries(self):
        values = np.array([5, 5, 5, 7, 7, 5], dtype=np.int64)
        assert run_boundaries(values).tolist() == [0, 3, 5]

    def test_roundtrip(self):
        values = np.repeat(np.array([1, 2, 3], dtype=np.int64), [5, 1, 10])
        encoded = rle_encode(values)
        assert encoded.run_count == 3
        assert np.array_equal(rle_decode(encoded), values)

    def test_all_equal_is_one_run(self):
        values = np.zeros(10_000, dtype=np.int64)
        encoded = rle_encode(values)
        assert encoded.run_count == 1
        assert encoded.size_bits() < 64 * 10  # tiny
        assert np.array_equal(rle_decode(encoded), values)

    def test_no_repeats_degenerates(self):
        values = np.arange(100, dtype=np.int64)
        encoded = rle_encode(values)
        assert encoded.run_count == 100
        assert np.array_equal(rle_decode(encoded), values)

    def test_empty(self):
        assert rle_decode(rle_encode(np.empty(0, dtype=np.int64))).size == 0

    @given(st.lists(st.integers(-5, 5), max_size=300))
    def test_roundtrip_random(self, xs):
        values = np.array(xs, dtype=np.int64)
        assert np.array_equal(rle_decode(rle_encode(values)), values)


class TestDictionary:
    def test_roundtrip(self):
        values = np.array([9, 3, 9, 9, 3, 1], dtype=np.int64)
        encoded = dictionary_encode(values)
        assert encoded.cardinality == 3
        assert np.array_equal(dictionary_decode(encoded), values)

    def test_low_cardinality_small_codes(self):
        values = np.tile(np.array([10, 20], dtype=np.int64), 512)
        encoded = dictionary_encode(values)
        assert encoded.codes.bit_width == 1

    @given(st.lists(st.integers(-100, 100), min_size=1, max_size=300))
    def test_roundtrip_random(self, xs):
        values = np.array(xs, dtype=np.int64)
        assert np.array_equal(
            dictionary_decode(dictionary_encode(values)), values
        )


class TestSkewedDictionary:
    def test_fit_single_value(self):
        sample = np.full(100, 7, dtype=np.uint64)
        d = SkewedDictionary.fit(sample)
        assert d.entries.tolist() == [7]
        assert d.code_width == 0

    def test_fit_respects_tolerance(self):
        # 95% of the sample is value 1 -> size-1 dictionary suffices (10% rule).
        sample = np.array([1] * 95 + [2, 3, 4, 5, 6], dtype=np.uint64)
        d = SkewedDictionary.fit(sample)
        assert d.entries.size == 1

    def test_fit_grows_to_eight(self):
        # Uniform over 16 values: even 8 entries leave 50% exceptions -> b = 3.
        sample = np.tile(np.arange(16, dtype=np.uint64), 10)
        d = SkewedDictionary.fit(sample)
        assert d.entries.size == 8
        assert d.code_width == 3

    def test_encode_decode_with_exceptions(self):
        d = SkewedDictionary.fit(np.array([1, 1, 2, 2], dtype=np.uint64))
        left = np.array([1, 2, 99, 1, 500], dtype=np.uint64)
        codes, exc_pos, exc_val = d.encode(left)
        assert exc_pos.tolist() == [2, 4]
        assert exc_val.tolist() == [99, 500]
        assert np.array_equal(d.decode(codes, exc_pos, exc_val), left)

    def test_empty_sample(self):
        d = SkewedDictionary.fit(np.empty(0, dtype=np.uint64))
        assert d.code_width == 0

    @given(
        st.lists(st.integers(0, 2**16 - 1), min_size=1, max_size=200),
        st.lists(st.integers(0, 2**16 - 1), min_size=1, max_size=200),
    )
    def test_roundtrip_random(self, sample, data):
        d = SkewedDictionary.fit(np.array(sample, dtype=np.uint64))
        left = np.array(data, dtype=np.uint64)
        codes, exc_pos, exc_val = d.encode(left)
        assert np.array_equal(d.decode(codes, exc_pos, exc_val), left)
