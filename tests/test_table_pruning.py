"""Zone-map predicate pushdown: pruned scans are exact, and they prune.

Two properties, checked together on every shape:

1. **Parity** — a predicate scan through the zone-map-pruned path is
   bit-identical to decoding everything and masking with numpy.
2. **Pruning** — on a selective predicate over a monotone column, the
   reader's own counters prove that most vectors were never decoded
   (the acceptance bar is >= 90% skipped at ~1% selectivity).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import obs
from repro.query.table import FilterPredicate
from repro.storage.schema import Column, Schema
from repro.storage.tablefile import TableFileReader, TableFileWriter


def _write(path, columns, validity=None, schema=None, **kwargs):
    if schema is None:
        cols = []
        for name, arr in columns.items():
            arr = np.asarray(arr)
            ctype = "float64" if arr.dtype.kind == "f" else (
                "int64" if arr.dtype.kind in ("i", "u") else "string"
            )
            nullable = validity is not None and name in validity
            cols.append(Column(name, ctype, nullable=nullable))
        schema = Schema(tuple(cols))
    with TableFileWriter(path, schema, **kwargs) as writer:
        writer.write_rows(dict(columns), validity=validity)


def _reference_scan(columns, validity, names, predicate):
    """Decode-everything baseline, computed in numpy."""
    pred_col = np.asarray(columns[predicate.column], dtype=np.float64)
    mask = (pred_col >= predicate.low) & (pred_col <= predicate.high)
    if validity and predicate.column in validity:
        mask &= validity[predicate.column]
    out_values = {n: np.asarray(columns[n])[mask] for n in names}
    out_validity = {
        n: validity[n][mask] for n in names if validity and n in validity
    }
    return out_values, out_validity


def _assert_scan_parity(path, columns, validity, names, predicate):
    with TableFileReader(path) as reader:
        got_values, got_validity = reader.scan(names, predicate)
    want_values, want_validity = _reference_scan(
        columns, validity, names, predicate
    )
    assert set(got_values) == set(want_values)
    for name in want_values:
        got, want = got_values[name], want_values[name]
        assert len(got) == len(want), name
        if np.asarray(want).dtype.kind == "f":
            assert np.array_equal(
                np.asarray(got).view(np.uint64),
                np.asarray(want, dtype=np.float64).view(np.uint64),
            ), name
        elif np.asarray(want).dtype.kind == "O":
            assert list(got) == list(want), name
        else:
            assert np.array_equal(got, want), name
    assert set(got_validity) == set(want_validity)
    for name in want_validity:
        assert np.array_equal(got_validity[name], want_validity[name])


def _monotone_table(n=65_536, seed=0):
    rng = np.random.default_rng(seed)
    return {
        "ts": np.cumsum(rng.random(n) + 0.5),
        "value": np.round(rng.normal(20, 5, n), 2),
        "count": rng.integers(0, 100, n),
    }


class TestParity:
    @pytest.mark.parametrize("selectivity", [0.01, 0.1, 0.5, 1.0])
    def test_monotone_predicate_parity(self, tmp_path, selectivity):
        columns = _monotone_table()
        path = tmp_path / "t.alpc"
        _write(path, columns)
        ts = columns["ts"]
        n = len(ts)
        lo_row = int(n * (0.5 - selectivity / 2))
        hi_row = min(int(n * (0.5 + selectivity / 2)), n - 1)
        predicate = FilterPredicate(
            "ts", low=float(ts[lo_row]), high=float(ts[hi_row])
        )
        _assert_scan_parity(
            path, columns, None, ["ts", "value", "count"], predicate
        )

    def test_random_predicate_column_parity(self, tmp_path):
        # Non-monotone predicate column: zones overlap, little prunes —
        # the answer must still be exact.
        rng = np.random.default_rng(7)
        n = 16_384
        columns = {
            "v": np.round(rng.normal(0, 100, n), 2),
            "w": np.round(rng.normal(0, 1, n), 2),
        }
        path = tmp_path / "t.alpc"
        _write(path, columns)
        predicate = FilterPredicate("v", low=-5.0, high=5.0)
        _assert_scan_parity(path, columns, None, ["v", "w"], predicate)

    def test_nullable_predicate_column_parity(self, tmp_path):
        # Null rows never match a range predicate.
        rng = np.random.default_rng(8)
        n = 8_192
        columns = {
            "v": np.round(rng.normal(0, 10, n), 2),
            "w": rng.integers(0, 5, n),
        }
        validity = {"v": rng.random(n) > 0.3}
        columns["v"][~validity["v"]] = 0.0
        path = tmp_path / "t.alpc"
        _write(path, columns, validity=validity)
        predicate = FilterPredicate("v", low=-3.0, high=3.0)
        _assert_scan_parity(
            path, columns, validity, ["v", "w"], predicate
        )

    def test_empty_result_parity(self, tmp_path):
        columns = _monotone_table(8_192)
        path = tmp_path / "t.alpc"
        _write(path, columns)
        predicate = FilterPredicate("ts", low=-100.0, high=-50.0)
        _assert_scan_parity(
            path, columns, None, ["value"], predicate
        )

    def test_int_predicate_parity(self, tmp_path):
        rng = np.random.default_rng(9)
        n = 8_192
        columns = {
            "k": np.sort(rng.integers(0, 10_000, n)),
            "v": np.round(rng.normal(0, 1, n), 2),
        }
        path = tmp_path / "t.alpc"
        _write(path, columns)
        predicate = FilterPredicate("k", low=100.0, high=200.0)
        _assert_scan_parity(path, columns, None, ["k", "v"], predicate)

    def test_string_predicate_rejected(self, tmp_path):
        columns = {
            "s": np.array(["a", "b"], dtype=object),
            "v": np.array([1.0, 2.0]),
        }
        path = tmp_path / "t.alpc"
        _write(path, columns)
        with TableFileReader(path) as reader:
            with pytest.raises(ValueError, match="string"):
                reader.scan(
                    ["v"], FilterPredicate("s", low=0.0, high=1.0)
                )


class TestPruningCounters:
    def _counter_delta(self, fn):
        was_enabled = obs.enabled()
        obs.enable()
        try:
            before = obs.snapshot()["counters"]
            fn()
            after = obs.snapshot()["counters"]
        finally:
            if not was_enabled:
                obs.disable()
        return {
            key: after.get(key, 0) - before.get(key, 0)
            for key in (
                "tablefile.vectors_pruned",
                "tablefile.vectors_decoded",
                "tablefile.rowgroups_pruned",
            )
        }

    def test_selective_scan_skips_90_percent_of_vectors(self, tmp_path):
        columns = _monotone_table()
        path = tmp_path / "t.alpc"
        _write(path, columns)
        ts = columns["ts"]
        n = len(ts)
        predicate = FilterPredicate(
            "ts",
            low=float(ts[int(n * 0.495)]),
            high=float(ts[int(n * 0.505)]),
        )
        with TableFileReader(path) as reader:
            delta = self._counter_delta(
                lambda: reader.scan(["value"], predicate)
            )
        skipped = delta["tablefile.vectors_pruned"]
        decoded = delta["tablefile.vectors_decoded"]
        assert decoded > 0  # something actually ran
        skip_fraction = skipped / (skipped + decoded)
        assert skip_fraction >= 0.90, (
            f"only {skip_fraction:.1%} of vectors skipped "
            f"({skipped} pruned, {decoded} decoded)"
        )

    def test_unselective_scan_decodes_everything(self, tmp_path):
        columns = _monotone_table(8_192)
        path = tmp_path / "t.alpc"
        _write(path, columns)
        ts = columns["ts"]
        predicate = FilterPredicate(
            "ts", low=float(ts[0]), high=float(ts[-1])
        )
        with TableFileReader(path) as reader:
            delta = self._counter_delta(
                lambda: reader.scan(["value"], predicate)
            )
        assert delta["tablefile.vectors_pruned"] == 0

    def test_no_match_prunes_whole_rowgroups(self, tmp_path):
        columns = _monotone_table(8_192)
        path = tmp_path / "t.alpc"
        _write(path, columns)
        predicate = FilterPredicate("ts", low=-10.0, high=-5.0)
        with TableFileReader(path) as reader:
            delta = self._counter_delta(
                lambda: reader.scan(["value"], predicate)
            )
            assert delta["tablefile.rowgroups_pruned"] == (
                reader.rowgroup_count
            )
        assert delta["tablefile.vectors_decoded"] == 0
