"""A from-scratch LZ77 byte compressor in the LZ4/Snappy family.

The paper positions LZ4/Snappy as the "fast, modest-ratio" end of
general-purpose compression (§1).  Since no such wheel exists offline,
this module implements the family's canonical design on its own:

- greedy hash-table match finder over a 64 KiB window,
- byte-aligned tokens: a literal-run length and a (offset, match
  length) copy, LZ4-block style,
- no entropy coding — which is exactly why the family is fast and why
  its ratio trails DEFLATE/Zstd.

Token format (one token per sequence)::

    u8   (literal_len 4 bits | match_len 4 bits), 15 = "more bytes"
    ...  extension bytes for literal_len (each 255 = continue)
    lit  literal bytes
    u16  match offset (little-endian, 0 terminates the stream after
         the literals — final token carries no match)
    ...  extension bytes for match_len

Like LZ4, matches are at least 4 bytes and the minimum offset is 1
(self-overlapping RLE copies allowed).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: Match-finder hash table size (bits).
HASH_BITS = 16

#: Minimum useful match (LZ4's constant).
MIN_MATCH = 4

#: Window the offset field can reach back.
MAX_OFFSET = 65_535


@dataclass(frozen=True)
class LzEncoded:
    """An LZ-compressed block of doubles."""

    payload: bytes
    count: int

    def size_bits(self) -> int:
        """Compressed footprint in bits."""
        return len(self.payload) * 8

    def bits_per_value(self) -> float:
        """Compressed bits per value (input values are 64-bit doubles)."""
        return self.size_bits() / self.count if self.count else 0.0


def _hash4(data: bytes, pos: int) -> int:
    """Hash of the 4 bytes at ``pos`` (Fibonacci multiplicative)."""
    word = int.from_bytes(data[pos : pos + 4], "little")
    return (word * 2654435761) >> (32 - HASH_BITS) & ((1 << HASH_BITS) - 1)


def _write_length(length: int, first_budget: int) -> tuple[int, bytes]:
    """Split a length into a 4-bit field value + extension bytes."""
    if length < first_budget:
        return length, b""
    extra = length - first_budget
    out = bytearray()
    while extra >= 255:
        out.append(255)
        extra -= 255
    out.append(extra)
    return first_budget, bytes(out)


def _read_length(
    field: int, data: bytes, pos: int, first_budget: int
) -> tuple[int, int]:
    """Inverse of :func:`_write_length`; returns (length, new pos)."""
    length = field
    if field == first_budget:
        while True:
            byte = data[pos]
            pos += 1
            length += byte
            if byte != 255:
                break
    return length, pos


def lz_compress_bytes(data: bytes) -> bytes:
    """Compress raw bytes with the LZ4-style block format."""
    n = len(data)
    out = bytearray()
    table = [-1] * (1 << HASH_BITS)
    pos = 0
    literal_start = 0

    def emit(literal_end: int, match_len: int, offset: int) -> None:
        literal_len = literal_end - literal_start
        lit_field, lit_ext = _write_length(literal_len, 15)
        match_field, match_ext = _write_length(
            match_len - MIN_MATCH if match_len else 0, 15
        )
        out.append((lit_field << 4) | match_field)
        out.extend(lit_ext)
        out.extend(data[literal_start:literal_end])
        out.extend(offset.to_bytes(2, "little"))
        out.extend(match_ext)

    while pos + MIN_MATCH <= n:
        key = _hash4(data, pos)
        candidate = table[key]
        table[key] = pos
        if (
            candidate >= 0
            and pos - candidate <= MAX_OFFSET
            and data[candidate : candidate + MIN_MATCH]
            == data[pos : pos + MIN_MATCH]
        ):
            # Extend the match forward.
            match_len = MIN_MATCH
            while (
                pos + match_len < n
                and data[candidate + match_len] == data[pos + match_len]
            ):
                match_len += 1
            emit(pos, match_len, pos - candidate)
            pos += match_len
            literal_start = pos
        else:
            pos += 1
    # Final literals with offset 0 (stream terminator).
    literal_len = n - literal_start
    lit_field, lit_ext = _write_length(literal_len, 15)
    out.append(lit_field << 4)
    out.extend(lit_ext)
    out.extend(data[literal_start:n])
    out.extend((0).to_bytes(2, "little"))
    return bytes(out)


def lz_decompress_bytes(payload: bytes) -> bytes:
    """Inverse of :func:`lz_compress_bytes`."""
    out = bytearray()
    pos = 0
    n = len(payload)
    while pos < n:
        token = payload[pos]
        pos += 1
        lit_field = token >> 4
        match_field = token & 0xF
        literal_len, pos = _read_length(lit_field, payload, pos, 15)
        out.extend(payload[pos : pos + literal_len])
        pos += literal_len
        offset = int.from_bytes(payload[pos : pos + 2], "little")
        pos += 2
        if offset == 0:
            break  # terminator token: no match follows
        match_len, pos = _read_length(match_field, payload, pos, 15)
        match_len += MIN_MATCH
        start = len(out) - offset
        for i in range(match_len):  # may self-overlap, byte at a time
            out.append(out[start + i])
    return bytes(out)


def lz_compress(values: np.ndarray) -> LzEncoded:
    """Compress a float64 array (via its raw bytes)."""
    values = np.ascontiguousarray(values, dtype=np.float64)
    return LzEncoded(
        payload=lz_compress_bytes(values.tobytes()), count=values.size
    )


def lz_decompress(encoded: LzEncoded) -> np.ndarray:
    """Decompress an :class:`LzEncoded` block back to float64."""
    if encoded.count == 0:
        return np.empty(0, dtype=np.float64)
    raw = lz_decompress_bytes(encoded.payload)
    return np.frombuffer(raw, dtype=np.float64).copy()
