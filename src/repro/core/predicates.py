"""Predicate evaluation directly on ALP-encoded integers.

Because ALP's decode ``n = d * 10^f * 10^-e`` (two IEEE 754 multiplies
by positive constants, evaluated in :func:`repro.core.alp.alp_decode_vector`
order) is monotone non-decreasing in the integer ``d``, a range predicate
on the doubles translates into an *exact* range predicate on the encoded
integers: the smallest ``d`` whose decode reaches ``low`` and the largest
``d`` whose decode stays within ``high`` are found by binary search over
the int64 domain (:func:`exact_encoded_bounds`).  Values that survived
encoding then satisfy ``low <= n <= high`` **iff** ``d_low <= d <=
d_high`` — no post-filter decode, no float confirmation pass.  Only
exception slots (whose payload holds a placeholder integer) are compared
as raw doubles.

The bulk comparison itself runs fused inside the unpack loop
(:func:`repro.encodings.ffor.ffor_filter_range`), and vectors whose FFOR
header (reference + bit width) already decides the predicate are skipped
without touching the payload — the deepest form of the paper's
predicate-push-down story.
"""

from __future__ import annotations

import math
from functools import lru_cache

import numpy as np

from repro import obs
from repro.core.alp import AlpVector
from repro.core.compressor import CompressedRowGroups
from repro.core.constants import F10, IF10
from repro.encodings.ffor import (
    ffor_filter_range,
    ffor_range_state,
    ffor_sum_range,
)

INT64_MIN = -(1 << 63)
INT64_MAX = (1 << 63) - 1

# (d_low, d_high) with d_low > d_high: matches nothing, by convention.
EMPTY_BOUNDS = (1, 0)


def decode_scalar(d: int, exponent: int, factor: int) -> float:
    """ALP_dec of a single integer, bit-identical to the vectorized path.

    Mirrors :func:`repro.core.alp.alp_decode_vector` exactly: int64 →
    float64 cast (round-to-nearest, as numpy's promotion does), then two
    *separate* multiplies.  This is the comparison oracle the bound
    search below inverts.
    """
    return float(d) * float(F10[factor]) * float(IF10[exponent])


def encoded_bounds(
    low: float, high: float, exponent: int, factor: int
) -> tuple[int, int]:
    """Conservative integer bounds for ``[low, high]`` under (e, f).

    The returned range is widened by one to absorb the rounding of
    ALP_enc at the boundaries, so it may admit false positives but never
    false negatives among *successfully encoded* values.  Kept as the
    cheap estimate for size/zone heuristics; exact filtering uses
    :func:`exact_encoded_bounds`.
    """
    scale = float(F10[exponent] * IF10[factor])
    d_low = math.floor(low * scale) - 1
    d_high = math.ceil(high * scale) + 1
    return d_low, d_high


@lru_cache(maxsize=4096)
def exact_encoded_bounds(
    low: float, high: float, exponent: int, factor: int
) -> tuple[int, int]:
    """Exact integer bounds: ``low <= dec(d) <= high  iff  d_low <= d <= d_high``.

    ``dec`` is monotone non-decreasing over int64 (each of its three
    rounding steps — the cast and the two positive-constant multiplies —
    preserves order), so the boundary integers are found by binary
    search: ``d_low`` is the smallest ``d`` with ``dec(d) >= low`` and
    ``d_high`` the largest with ``dec(d) <= high``.  Roughly 2 x 64
    scalar decodes per distinct (low, high, e, f), cached thereafter.

    NaN bounds, inverted ranges and ranges beyond the decodable domain
    all collapse to :data:`EMPTY_BOUNDS` (``d_low > d_high``).
    """
    if math.isnan(low) or math.isnan(high) or low > high:
        return EMPTY_BOUNDS
    # Smallest d with dec(d) >= low.
    if decode_scalar(INT64_MAX, exponent, factor) < low:
        return EMPTY_BOUNDS
    if decode_scalar(INT64_MIN, exponent, factor) >= low:
        d_low = INT64_MIN
    else:
        lo, hi = INT64_MIN, INT64_MAX  # dec(lo) < low <= dec(hi)
        while hi - lo > 1:
            mid = (lo + hi) // 2
            if decode_scalar(mid, exponent, factor) >= low:
                hi = mid
            else:
                lo = mid
        d_low = hi
    # Largest d with dec(d) <= high.
    if decode_scalar(INT64_MIN, exponent, factor) > high:
        return EMPTY_BOUNDS
    if decode_scalar(INT64_MAX, exponent, factor) <= high:
        d_high = INT64_MAX
    else:
        lo, hi = INT64_MIN, INT64_MAX  # dec(lo) <= high < dec(hi)
        while hi - lo > 1:
            mid = (lo + hi) // 2
            if decode_scalar(mid, exponent, factor) <= high:
                lo = mid
            else:
                hi = mid
        d_high = lo
    if d_low > d_high:
        return EMPTY_BOUNDS
    return d_low, d_high


def _exception_mask(
    vector: AlpVector, low: float, high: float
) -> np.ndarray:
    """Float-domain range test of the raw exception doubles.

    NaN payloads compare False on both sides, so they never match — the
    same behaviour the decode-then-filter path exhibits.
    """
    exc = vector.exc_values
    result: np.ndarray = (exc >= low) & (exc <= high)
    return result


def filter_vector_encoded(
    vector: AlpVector, low: float, high: float
) -> np.ndarray:
    """Positions in a vector whose value lies in ``[low, high]``.

    The bulk test is pure integer comparison on the packed payload
    (fused unpack-compare); only exception slots touch floating point.
    Selections are bit-identical to filtering the decoded column.
    """
    mask = filter_mask_encoded(vector, low, high)
    return np.flatnonzero(mask).astype(np.int64)


def filter_mask_encoded(
    vector: AlpVector, low: float, high: float
) -> np.ndarray:
    """Boolean mask form of :func:`filter_vector_encoded`."""
    d_low, d_high = exact_encoded_bounds(
        low, high, vector.exponent, vector.factor
    )
    mask = ffor_filter_range(vector.ffor, d_low, d_high)
    if vector.exc_positions.size:
        # Exception slots hold placeholder integers: overwrite whatever
        # the integer test said with the raw-double comparison.
        mask[vector.exc_positions.astype(np.int64)] = _exception_mask(
            vector, low, high
        )
    return mask


def count_vector_encoded(
    vector: AlpVector, low: float, high: float
) -> int:
    """Count of in-range values in one vector, encoded-domain only.

    Exception-free vectors decided by the FFOR header (full accept or
    reject) are counted without unpacking a single bit.
    """
    d_low, d_high = exact_encoded_bounds(
        low, high, vector.exponent, vector.factor
    )
    if not vector.exception_count:
        state = ffor_range_state(vector.ffor, d_low, d_high)
        if state == "reject":
            obs.counter_add("predicates.vectors_skipped")
            return 0
        if state == "accept":
            obs.counter_add("predicates.vectors_accepted")
            return vector.count
        return int(ffor_filter_range(vector.ffor, d_low, d_high).sum())
    mask = ffor_filter_range(vector.ffor, d_low, d_high)
    mask[vector.exc_positions.astype(np.int64)] = _exception_mask(
        vector, low, high
    )
    return int(mask.sum())


def sum_range_vector(
    vector: AlpVector, low: float, high: float
) -> tuple[float, int]:
    """Filtered SUM of one vector in the encoded domain: ``(sum, count)``.

    Selected non-exception integers are summed exactly by the fused
    :func:`~repro.encodings.ffor.ffor_sum_range` kernel and scaled once
    per vector; in-range exception doubles are added afterwards.  When
    nothing but exceptions matches, the result is exactly the float sum
    of those raw doubles (no spurious ``+0.0`` main term).
    """
    d_low, d_high = exact_encoded_bounds(
        low, high, vector.exponent, vector.factor
    )
    exclude = (
        vector.exc_positions if vector.exception_count else None
    )
    d_sum, kept = ffor_sum_range(vector.ffor, d_low, d_high, exclude)
    if vector.exception_count:
        exc_match = _exception_mask(vector, low, high)
        n_exc = int(exc_match.sum())
        exc_sum = float(np.sum(vector.exc_values[exc_match])) if n_exc else 0.0
    else:
        n_exc = 0
        exc_sum = 0.0
    if kept == 0:
        # Empty integer selection: return the exception sum untouched so
        # an all-exception selection stays bit-identical to the decode
        # path (including a -0.0 total).
        return (exc_sum if n_exc else 0.0), n_exc
    main = float(d_sum) * float(F10[vector.factor]) * float(
        IF10[vector.exponent]
    )
    if n_exc:
        return main + exc_sum, kept + n_exc
    return main, kept


def count_range_encoded(
    column: CompressedRowGroups, low: float, high: float
) -> int:
    """Count of values in ``[low, high]`` using encoded-space filtering.

    ALP row-groups use the integer fast path (vectors whose FFOR header
    excludes or fully contains the predicate are decided with no
    unpacking and no floating-point work); ALP_rd row-groups fall back
    to decoding.
    """
    from repro.core.alprd import decode_vector_bits
    from repro.alputil.bits import bits_to_double

    total = 0
    for rowgroup in column.rowgroups:
        if rowgroup.alp is not None:
            for vector in rowgroup.alp.vectors:
                total += count_vector_encoded(vector, low, high)
        else:
            if rowgroup.rd is None:
                raise ValueError(
                    "row-group has neither ALP nor ALP_rd payload"
                )
            for vector in rowgroup.rd.vectors:
                values = bits_to_double(
                    decode_vector_bits(vector, rowgroup.rd.parameters)
                )
                total += int(((values >= low) & (values <= high)).sum())
    return total


def vector_may_match(
    vector: AlpVector, low: float, high: float
) -> bool:
    """Cheap per-vector test from the FFOR header alone.

    Uses only (reference, bit width) — no unpacking at all: the encoded
    integers all lie in ``[reference, reference + 2^width)``.  Vectors
    with exceptions are always possible matches.
    """
    if vector.exception_count:
        return True
    d_low, d_high = exact_encoded_bounds(
        low, high, vector.exponent, vector.factor
    )
    return (
        ffor_range_state(vector.ffor, d_low, d_high) != "reject"
    )
