"""repro.server — an async columnar serving layer over the ALP pipeline.

This package puts the existing surface behind a socket:

- :mod:`repro.server.protocol` — the length-prefixed framed wire format
  (JSON header + raw payload) and the in-memory column wire encoding;
- :mod:`repro.server.cache` — the shared decoded-vector LRU cache,
  keyed by ``(file, rowgroup)`` with a byte budget, also usable by the
  local query engine (``FileColumnSource(cache=...)``);
- :mod:`repro.server.bufferpool` — the size-bucketed pool of reusable
  decode buffers behind the zero-allocation steady-state scan path;
- :mod:`repro.server.registry` — the dataset registry mapping served
  names to open (degraded) column readers;
- :mod:`repro.server.ops` — the *synchronous* request handlers
  (scan/sum/comp/compress/decompress/stats) that the event loop offloads
  to the worker thread pool;
- :mod:`repro.server.service` — the asyncio TCP server: bounded
  admission with explicit ``overloaded`` frames, per-request deadlines,
  slow-client write limits, graceful draining shutdown;
- :mod:`repro.server.client` — the blocking socket client used by the
  load generator, the tests and the CLI;
- :mod:`repro.server.loadgen` — a closed-loop concurrent load generator
  reporting p50/p95/p99 latency and emitting a ``BENCH_*.json`` record.

Semantics (frames, cache, backpressure, failure modes) are documented in
``docs/SERVING.md``; ``alp-repro serve`` / ``alp-repro loadgen`` are the
CLI entry points.
"""

from __future__ import annotations

from repro.server.bufferpool import BufferPool, PoolStats
from repro.server.cache import CacheStats, DecodedVectorCache
from repro.server.client import (
    ServerClient,
    ServerError,
    ServerUnavailableError,
)
from repro.server.registry import DatasetRegistry
from repro.server.service import ReproServer, ServerConfig, run_in_thread

__all__ = [
    "BufferPool",
    "CacheStats",
    "PoolStats",
    "DatasetRegistry",
    "DecodedVectorCache",
    "ReproServer",
    "ServerClient",
    "ServerConfig",
    "ServerError",
    "ServerUnavailableError",
    "run_in_thread",
]
