"""Multi-column table files — ALPC format version 4.

Format v4 generalizes the single-column v3 layout (see
``columnfile.py`` and docs/FORMAT.md) into a schema-described table:

- the 14-byte header is byte-compatible with v3 (``ALPC`` magic, u16
  version = 4, u32 vector size, u32 CRC32C of the first 10 bytes);
- the body is a sequence of *row-groups*; inside each row-group every
  column of the schema gets its own independently-addressed **chunk**
  (validity bitmap + codec tag + encoded payload), so a reader seeks
  and decodes only the columns a query projects;
- the footer carries the JSON schema, per-row-group row counts, and a
  per-chunk table of offsets, CRC32C checksums, and typed zone maps at
  both chunk and vector granularity (min/max over *valid* values plus
  a null count) — the zone maps drive predicate push-down that skips
  vectors without touching their payload bytes;
- the trailer is identical to v3: u32 footer CRC, u64 footer offset,
  trailing magic.

Codecs per logical type (see :mod:`repro.storage.schema`): float64
columns store one serialized ALP/ALP_rd row-group per chunk (the exact
bytes a v3 file would hold), int64 columns store per-vector FFOR or
delta frames (chosen by encoded size unless pinned), and string
columns store a sorted dictionary plus bit-packed codes.  Null slots
are filled with a neutral value before encoding and masked back out by
the validity bitmap on read.

:class:`TableFileReader` also opens v2/v3 files, presenting them as a
one-column table, so every consumer of the table API reads all three
format generations through the same entry point.
"""

from __future__ import annotations

import os
import struct
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterator

import numpy as np

from repro import obs
from repro.concurrency import create_lock
from repro.core.compressor import (
    CompressedRowGroup,
    CompressedRowGroups,
    coerce_decode_out,
    compress_rowgroup,
    decompress,
)
from repro.core.constants import ROWGROUP_VECTORS, VECTOR_SIZE
from repro.encodings.bitpack import bit_width_required, pack_bits, unpack_bits
from repro.encodings.delta import DeltaEncoded, delta_decode, delta_encode
from repro.encodings.ffor import FforEncoded, ffor_decode, ffor_encode
from repro.storage.columnfile import (
    MAGIC,
    MMAP_MIN_BYTES,
    ColumnFileReader,
    QuarantinedRowGroup,
    RowGroupMeta,
    ScanReport,
    VectorZone,
    _fsync_directory,
)
from repro.storage.errors import (
    BufferLifetimeError,
    CorruptFileError,
    CorruptRowGroupError,
)
from repro.storage.integrity import crc32c
from repro.storage.schema import (
    CODECS_BY_TYPE,
    FLOAT64,
    INT64,
    STRING,
    Column,
    Schema,
)
from repro.storage.serializer import (
    ByteReader,
    ByteWriter,
    _read_ffor,
    _write_ffor,
    deserialize_rowgroup,
    empty_stats,
    serialize_rowgroup,
)

if TYPE_CHECKING:
    from repro.api import CompressionOptions
    from repro.storage.columnfile import RowGroupCache

import itertools
import mmap as _mmaplib

FORMAT_VERSION_V4 = 4

_HEADER_BODY = struct.calcsize("<4sHI")
_HEADER_LEN_V4 = _HEADER_BODY + 4
_TRAILER_LEN_V4 = 16

#: Per-chunk footer entry: offset, length, payload CRC, zone flags,
#: raw min, raw max (type-tagged 8-byte fields), null count, vectors.
_CHUNK_ENTRY = struct.Struct("<QQIB8s8sQI")
#: Per-vector zone entry: zone flags, raw min, raw max, null count.
_VZONE_ENTRY = struct.Struct("<B8s8sI")

_ZONE_HAS_MINMAX = 1
_ZONE_NON_FINITE = 2

_CHUNK_HAS_NULLS = 1

#: Chunk codec tags (the chunk header's ``codec`` byte).
CODEC_FLOAT_ROWGROUP = 0
CODEC_INT_FFOR = 1
CODEC_INT_DELTA = 2
CODEC_STRING_DICT = 3

_DECODE_ERRORS = (
    ValueError,
    IndexError,
    KeyError,
    OverflowError,
    struct.error,
    UnicodeDecodeError,
)

_TMP_COUNTER = itertools.count()


def file_format_version(path: str | os.PathLike) -> int:
    """The ALPC format version of ``path`` (2, 3 or 4).

    Raises :class:`CorruptFileError` when the file is too short or the
    magic does not match — version dispatch and corruption detection
    share one entry point so every caller reports the same error.
    """
    path = os.fspath(path)
    with open(path, "rb") as f:
        head = f.read(_HEADER_BODY)
    if len(head) < _HEADER_BODY or head[:4] != MAGIC:
        raise CorruptFileError(path, "not an ALPC file (bad magic)")
    return int(struct.unpack_from("<H", head, 4)[0])


def _to_bytes(data: "bytes | memoryview") -> bytes:
    """Materialize a buffer slice for text decoding (mmap path)."""
    return data.tobytes() if isinstance(data, memoryview) else data


def _validity_to_bitmap(validity: np.ndarray) -> bytes:
    return np.packbits(
        validity.astype(np.uint8), bitorder="little"
    ).tobytes()


def _bitmap_to_validity(data: "bytes | memoryview", count: int) -> np.ndarray:
    bits = np.unpackbits(
        np.frombuffer(data, dtype=np.uint8), count=count, bitorder="little"
    )
    return bits.astype(bool)


# -- zone maps --------------------------------------------------------


@dataclass(frozen=True)
class ChunkZone:
    """Typed zone map over the *valid* values of a chunk or vector.

    ``min_value``/``max_value`` are ``None`` when no finite valid value
    exists (all-null, empty, or a string column, which carries only the
    null count).  A zone without bounds can never match a range
    predicate — null and absent values never satisfy comparisons.
    """

    min_value: "float | int | None"
    max_value: "float | int | None"
    has_non_finite: bool
    null_count: int

    def may_contain_range(self, low: float, high: float) -> bool:
        if self.has_non_finite:
            return True
        if self.min_value is None or self.max_value is None:
            return False
        return self.max_value >= low and self.min_value <= high


def _chunk_zone(
    column: Column, values: np.ndarray, validity: "np.ndarray | None"
) -> ChunkZone:
    total = len(values)
    if validity is None:
        valid = values
        null_count = 0
    else:
        valid = values[validity]
        null_count = total - len(valid)
    if column.type == STRING:
        return ChunkZone(None, None, False, null_count)
    valid = np.asarray(valid)
    if column.type == FLOAT64:
        finite = valid[np.isfinite(valid)]
        has_non_finite = finite.size != valid.size
        if finite.size == 0:
            return ChunkZone(None, None, has_non_finite, null_count)
        return ChunkZone(
            float(finite.min()), float(finite.max()), has_non_finite, null_count
        )
    if valid.size == 0:
        return ChunkZone(None, None, False, null_count)
    return ChunkZone(int(valid.min()), int(valid.max()), False, null_count)


def _vector_zones_typed(
    column: Column,
    values: np.ndarray,
    validity: "np.ndarray | None",
    vector_size: int,
) -> tuple[ChunkZone, ...]:
    zones = []
    for start in range(0, len(values), vector_size):
        stop = start + vector_size
        zones.append(
            _chunk_zone(
                column,
                values[start:stop],
                None if validity is None else validity[start:stop],
            )
        )
    return tuple(zones)


def _pack_bound(column: Column, value: "float | int | None") -> bytes:
    if value is None:
        return b"\x00" * 8
    if column.type == INT64:
        return struct.pack("<q", int(value))
    return struct.pack("<d", float(value))


def _unpack_bound(
    column: Column, raw: bytes, flags: int
) -> "float | int | None":
    if not flags & _ZONE_HAS_MINMAX:
        return None
    if column.type == INT64:
        return int(struct.unpack("<q", raw)[0])
    return float(struct.unpack("<d", raw)[0])


def _zone_flags(zone: ChunkZone) -> int:
    flags = 0
    if zone.min_value is not None:
        flags |= _ZONE_HAS_MINMAX
    if zone.has_non_finite:
        flags |= _ZONE_NON_FINITE
    return flags


def _float_lower(value: "float | int") -> float:
    """Largest float <= value (conservative zone widening for int64)."""
    f = float(value)
    return f if f <= value else float(np.nextafter(f, -np.inf))


def _float_upper(value: "float | int") -> float:
    f = float(value)
    return f if f >= value else float(np.nextafter(f, np.inf))


def _zone_as_vectorzone(zone: ChunkZone) -> VectorZone:
    """Project a typed chunk zone onto the float-domain VectorZone.

    Integer bounds outside float53 precision are widened outward so the
    float-domain test stays conservative; a boundless zone maps to the
    NaN/NaN zone the v3 reader already treats as never-matching.
    """
    if zone.min_value is None or zone.max_value is None:
        return VectorZone(
            float("nan"), float("nan"), zone.has_non_finite
        )
    return VectorZone(
        _float_lower(zone.min_value),
        _float_upper(zone.max_value),
        zone.has_non_finite,
    )


@dataclass(frozen=True)
class ChunkMeta:
    """Footer entry for one (row-group, column) chunk."""

    offset: int
    length: int
    payload_crc: int
    zone: ChunkZone
    vector_zones: tuple[ChunkZone, ...]


@dataclass(frozen=True)
class QuarantinedChunk:
    """One corrupt chunk a degraded table reader skipped."""

    rowgroup: int
    column: str
    offset: int
    length: int
    count: int
    reason: str

    def as_dict(self) -> dict[str, object]:
        return {
            "rowgroup": self.rowgroup,
            "column": self.column,
            "offset": self.offset,
            "length": self.length,
            "count": self.count,
            "reason": self.reason,
        }


@dataclass(frozen=True)
class TableScanReport:
    """Structured account of what a degraded table reader quarantined."""

    path: str
    format_version: int
    chunks_total: int
    chunks_quarantined: int
    values_quarantined: int
    quarantined: tuple[QuarantinedChunk, ...]

    @property
    def clean(self) -> bool:
        return self.chunks_quarantined == 0

    def as_dict(self) -> dict[str, object]:
        return {
            "path": self.path,
            "format_version": self.format_version,
            "chunks_total": self.chunks_total,
            "chunks_quarantined": self.chunks_quarantined,
            "values_quarantined": self.values_quarantined,
            "quarantined": [entry.as_dict() for entry in self.quarantined],
        }


# -- chunk encoding ---------------------------------------------------


def _coerce_column_values(column: Column, values: object) -> np.ndarray:
    if column.type == FLOAT64:
        return np.ascontiguousarray(values, dtype=np.float64)
    if column.type == INT64:
        return np.ascontiguousarray(values, dtype=np.int64)
    arr = np.asarray(values, dtype=object)
    if arr.ndim != 1:
        raise ValueError(f"column {column.name!r}: values must be 1-D")
    return arr


def _fill_nulls(
    column: Column, values: np.ndarray, validity: "np.ndarray | None"
) -> np.ndarray:
    """Replace null slots with a codec-neutral fill before encoding."""
    if validity is None or bool(validity.all()):
        return values
    if column.type == FLOAT64:
        return np.where(validity, values, 0.0)
    if column.type == INT64:
        return np.where(validity, values, np.int64(0))
    out = values.copy()
    out[~validity] = ""
    return out


def _encode_float_payload(
    values: np.ndarray, vector_size: int, force_scheme: "str | None"
) -> bytes:
    rowgroup, _, _ = compress_rowgroup(
        values, vector_size=vector_size, force_scheme=force_scheme
    )
    return serialize_rowgroup(rowgroup)


def _write_delta(w: ByteWriter, enc: DeltaEncoded) -> None:
    w.i64(enc.first_value)
    w.u8(enc.bit_width)
    w.u32(len(enc.payload))
    w.raw(enc.payload)
    w.u32(enc.count)


def _read_delta(r: ByteReader) -> DeltaEncoded:
    first_value = r.i64()
    bit_width = r.u8()
    payload = r.raw(r.u32())
    count = r.u32()
    return DeltaEncoded(
        payload=payload,
        first_value=first_value,
        bit_width=bit_width,
        count=count,
    )


def _encode_int_payload(
    values: np.ndarray, vector_size: int, codec: "str | None"
) -> tuple[bytes, int]:
    """Encode an int64 chunk as per-vector FFOR or delta frames.

    One frame per vector keeps vector-granular random access (the zone
    map skip path decodes only surviving vectors).  Without a pinned
    codec both encodings are produced and the smaller payload wins.
    """
    vectors = [
        values[start : start + vector_size]
        for start in range(0, values.size, vector_size)
    ]

    def build(name: str) -> bytes:
        w = ByteWriter()
        w.u32(len(vectors))
        for vec in vectors:
            if name == "ffor":
                _write_ffor(w, ffor_encode(vec))
            else:
                _write_delta(w, delta_encode(vec))
        return w.getvalue()

    if codec == "ffor":
        return build("ffor"), CODEC_INT_FFOR
    if codec == "delta":
        return build("delta"), CODEC_INT_DELTA
    ffor_bytes = build("ffor")
    delta_bytes = build("delta")
    if len(delta_bytes) < len(ffor_bytes):
        return delta_bytes, CODEC_INT_DELTA
    return ffor_bytes, CODEC_INT_FFOR


def _encode_string_payload(values: np.ndarray) -> bytes:
    """Dictionary-encode a string chunk: sorted dict + packed codes."""
    strings: list[str] = []
    for v in values:
        if not isinstance(v, str):
            raise ValueError(
                f"string column values must be str, got {type(v).__name__}"
            )
        strings.append(v)
    entries = sorted(set(strings))
    index = {s: i for i, s in enumerate(entries)}
    codes = np.fromiter(
        (index[s] for s in strings), dtype=np.uint64, count=len(strings)
    )
    width = bit_width_required(codes)
    packed = pack_bits(codes, width) if width else b""
    w = ByteWriter()
    w.u32(len(entries))
    for s in entries:
        raw = s.encode("utf-8")
        w.u32(len(raw))
        w.raw(raw)
    w.u32(len(strings))
    w.u8(width)
    w.u32(len(packed))
    w.raw(packed)
    return w.getvalue()


def _encode_chunk(
    column: Column,
    values: np.ndarray,
    validity: "np.ndarray | None",
    vector_size: int,
    codec: "str | None",
) -> bytes:
    """Assemble one on-disk chunk: flags, bitmap, codec tag, payload."""
    w = ByteWriter()
    has_nulls = validity is not None and not bool(validity.all())
    w.u8(_CHUNK_HAS_NULLS if has_nulls else 0)
    if validity is not None and has_nulls:
        bitmap = _validity_to_bitmap(validity)
        w.u32(len(bitmap))
        w.raw(bitmap)
    filled = _fill_nulls(column, values, validity if has_nulls else None)
    if column.type == FLOAT64:
        force = codec if codec in ("alp", "alprd") else None
        payload = _encode_float_payload(filled, vector_size, force)
        tag = CODEC_FLOAT_ROWGROUP
    elif column.type == INT64:
        payload, tag = _encode_int_payload(filled, vector_size, codec)
    else:
        payload = _encode_string_payload(filled)
        tag = CODEC_STRING_DICT
    w.u8(tag)
    w.u32(len(payload))
    w.raw(payload)
    return w.getvalue()


# -- writer -----------------------------------------------------------


class TableFileWriter:
    """Stream a multi-column table into ALPC format v4.

    Same crash-safety contract as :class:`ColumnFileWriter`: all bytes
    go to a temp file that is fsynced and atomically renamed over
    ``path`` only when :meth:`close` completes.  Version 4 files always
    carry CRC32C integrity sections — there is no un-checksummed v4
    variant.
    """

    def __init__(
        self,
        path: str | os.PathLike,
        schema: Schema,
        *,
        vector_size: int = VECTOR_SIZE,
        rowgroup_vectors: int = ROWGROUP_VECTORS,
        options: "CompressionOptions | None" = None,
    ) -> None:
        if not isinstance(schema, Schema):
            raise ValueError(
                f"schema must be a Schema, got {type(schema).__name__}"
            )
        overrides: dict[str, str] = {}
        force_scheme: "str | None" = None
        if options is not None:
            vector_size = options.vector_size
            rowgroup_vectors = options.rowgroup_vectors
            force_scheme = options.force_scheme
            overrides = dict(getattr(options, "column_codecs", ()) or ())
        for name in overrides:
            # Unknown names are a caller bug, not a soft no-op.
            schema.column(name)
        self._schema = schema
        self._codecs: dict[str, "str | None"] = {}
        for col in schema:
            codec = col.codec if col.codec is not None else overrides.get(col.name)
            if col.type == FLOAT64 and codec is None and force_scheme is not None:
                codec = force_scheme
            if codec is not None and codec not in CODECS_BY_TYPE[col.type]:
                raise ValueError(
                    f"codec {codec!r} does not apply to column "
                    f"{col.name!r} ({col.type}); valid: "
                    f"{CODECS_BY_TYPE[col.type]}"
                )
            self._codecs[col.name] = codec
        self._path = os.fspath(path)
        self._tmp_path = f"{self._path}.tmp-{os.getpid()}-{next(_TMP_COUNTER)}"
        self._vector_size = vector_size
        self._rowgroup_size = vector_size * rowgroup_vectors
        self._rows: list[int] = []
        self._chunks: list[list[ChunkMeta]] = []
        self._closed = False
        self._file = open(self._tmp_path, "wb")
        try:
            header = MAGIC + struct.pack("<HI", FORMAT_VERSION_V4, vector_size)
            self._file.write(header)
            self._file.write(struct.pack("<I", crc32c(header)))
        except BaseException:
            self.abort()
            raise

    @property
    def path(self) -> str:
        return self._path

    @property
    def schema(self) -> Schema:
        return self._schema

    @property
    def format_version(self) -> int:
        return FORMAT_VERSION_V4

    def write_rows(
        self,
        columns: "dict[str, object]",
        validity: "dict[str, np.ndarray] | None" = None,
    ) -> None:
        """Compress and append rows (sliced into row-groups).

        ``columns`` must provide values for every schema column, all of
        the same length.  ``validity`` maps *nullable* column names to
        boolean masks (True = valid); omitted nullable columns are
        fully valid, and masks for non-nullable columns are rejected.
        """
        if self._closed:
            raise ValueError(f"writer for {self._path} is closed")
        validity = dict(validity or {})
        missing = set(self._schema.names) - set(columns)
        if missing:
            raise ValueError(f"missing values for columns {sorted(missing)}")
        extra = set(columns) - set(self._schema.names)
        if extra:
            raise ValueError(f"unknown columns {sorted(extra)}")
        for name in validity:
            if self._schema.column(name).nullable is False:
                raise ValueError(
                    f"column {name!r} is not nullable; validity mask rejected"
                )
        arrays: dict[str, np.ndarray] = {}
        masks: dict[str, "np.ndarray | None"] = {}
        n_rows: "int | None" = None
        for col in self._schema:
            arr = _coerce_column_values(col, columns[col.name])
            if n_rows is None:
                n_rows = len(arr)
            elif len(arr) != n_rows:
                raise ValueError(
                    f"column {col.name!r} has {len(arr)} values, "
                    f"expected {n_rows}"
                )
            mask = validity.get(col.name)
            if mask is not None:
                mask = np.ascontiguousarray(mask, dtype=bool)
                if mask.shape != (len(arr),):
                    raise ValueError(
                        f"validity mask for {col.name!r} must have "
                        f"{len(arr)} entries"
                    )
            arrays[col.name] = arr
            masks[col.name] = mask
        if n_rows is None:
            raise ValueError("cannot write rows for an empty schema")
        with obs.span("tablefile.write"):
            for start in range(0, n_rows, self._rowgroup_size):
                stop = min(start + self._rowgroup_size, n_rows)
                self._append_rowgroup(
                    {n: a[start:stop] for n, a in arrays.items()},
                    {
                        n: (m[start:stop] if m is not None else None)
                        for n, m in masks.items()
                    },
                    stop - start,
                )

    def _append_rowgroup(
        self,
        arrays: dict[str, np.ndarray],
        masks: dict[str, "np.ndarray | None"],
        n_rows: int,
    ) -> None:
        metas: list[ChunkMeta] = []
        for col in self._schema:
            values = arrays[col.name]
            mask = masks[col.name]
            chunk = _encode_chunk(
                col, values, mask, self._vector_size, self._codecs[col.name]
            )
            offset = self._file.tell()
            self._file.write(chunk)
            if obs.ENABLED:
                obs.metrics.counter_add("tablefile.chunks_written", 1)
                obs.metrics.counter_add("tablefile.bytes_written", len(chunk))
            metas.append(
                ChunkMeta(
                    offset=offset,
                    length=len(chunk),
                    payload_crc=crc32c(chunk),
                    zone=_chunk_zone(col, values, mask),
                    vector_zones=_vector_zones_typed(
                        col, values, mask, self._vector_size
                    ),
                )
            )
        self._rows.append(n_rows)
        self._chunks.append(metas)

    def append_chunks(
        self, n_rows: int, chunks: "list[tuple[bytes, ChunkMeta]]"
    ) -> None:
        """Append one row-group from already-encoded chunk bytes.

        The repair path: intact chunks of a damaged file are copied
        byte-for-byte (no recompression), reusing their zone maps while
        checksums are recomputed from the bytes actually written.
        """
        if self._closed:
            raise ValueError(f"writer for {self._path} is closed")
        if len(chunks) != len(self._schema):
            raise ValueError(
                f"expected {len(self._schema)} chunks, got {len(chunks)}"
            )
        metas: list[ChunkMeta] = []
        for raw, meta in chunks:
            offset = self._file.tell()
            self._file.write(raw)
            metas.append(
                ChunkMeta(
                    offset=offset,
                    length=len(raw),
                    payload_crc=crc32c(raw),
                    zone=meta.zone,
                    vector_zones=meta.vector_zones,
                )
            )
        self._rows.append(n_rows)
        self._chunks.append(metas)

    def _footer_bytes(self) -> bytes:
        schema_json = self._schema.to_json().encode("utf-8")
        parts = [struct.pack("<I", len(schema_json)), schema_json]
        parts.append(struct.pack("<I", len(self._rows)))
        for n_rows in self._rows:
            parts.append(struct.pack("<Q", n_rows))
        for metas in self._chunks:
            for col, meta in zip(self._schema, metas, strict=True):
                parts.append(
                    _CHUNK_ENTRY.pack(
                        meta.offset,
                        meta.length,
                        meta.payload_crc,
                        _zone_flags(meta.zone),
                        _pack_bound(col, meta.zone.min_value),
                        _pack_bound(col, meta.zone.max_value),
                        meta.zone.null_count,
                        len(meta.vector_zones),
                    )
                )
                for zone in meta.vector_zones:
                    parts.append(
                        _VZONE_ENTRY.pack(
                            _zone_flags(zone),
                            _pack_bound(col, zone.min_value),
                            _pack_bound(col, zone.max_value),
                            zone.null_count,
                        )
                    )
        return b"".join(parts)

    def close(self) -> None:
        """Write footer + trailer, fsync, atomically publish (idempotent)."""
        if self._closed:
            return
        try:
            footer_offset = self._file.tell()
            footer = self._footer_bytes()
            self._file.write(footer)
            self._file.write(struct.pack("<I", crc32c(footer)))
            self._file.write(struct.pack("<Q", footer_offset))
            self._file.write(MAGIC)
            self._file.flush()
            os.fsync(self._file.fileno())
            self._file.close()
            os.replace(self._tmp_path, self._path)
            _fsync_directory(os.path.dirname(self._path) or ".")
        except BaseException:
            self.abort()
            raise
        self._closed = True

    def abort(self) -> None:
        if self._closed:
            return
        self._closed = True
        try:
            self._file.close()
        finally:
            try:
                os.unlink(self._tmp_path)
            except OSError:
                pass

    def __enter__(self) -> "TableFileWriter":
        return self

    def __exit__(self, exc_type: object, *exc_info: object) -> None:
        if exc_type is not None:
            self.abort()
        else:
            self.close()


# -- parsed chunk -----------------------------------------------------


@dataclass(frozen=True)
class _ParsedChunk:
    """Decoded chunk framing: validity plus payload location."""

    validity: "np.ndarray | None"
    codec: int
    payload_offset: int
    payload_length: int


# -- reader -----------------------------------------------------------


class TableFileReader:
    """Random-access reader over an ALPC table (v4) or column (v2/v3) file.

    v2/v3 files open through the same constructor and appear as a
    one-column table (one non-nullable float64 column named after the
    file stem); all v4-only structure is synthesized from the legacy
    footer, so format dispatch lives here instead of in every caller.

    Same integrity contract as :class:`ColumnFileReader`, at chunk
    granularity: header/footer checksums verify at open, chunk CRCs
    verify lazily on first access, and ``degraded=True`` makes bulk
    reads quarantine corrupt chunks — dropping the affected row-group's
    *rows* from every requested column, so multi-column results stay
    row-aligned — instead of raising.
    """

    def __init__(
        self,
        path: str | os.PathLike,
        *,
        degraded: bool = False,
        mmap: bool = False,
    ) -> None:
        self._path = os.fspath(path)
        self._degraded = degraded
        self._closed = False
        self._mmap: "_mmaplib.mmap | None" = None
        self._legacy: "ColumnFileReader | None" = None
        self._integrity_lock = create_lock("TableFileReader._integrity_lock")
        self._quarantined: dict[tuple[int, int], CorruptRowGroupError] = {}
        self._checked: dict[tuple[int, int], "CorruptRowGroupError | None"] = {}
        version = file_format_version(self._path)
        if version < FORMAT_VERSION_V4:
            self._legacy = ColumnFileReader(
                self._path, degraded=degraded, mmap=mmap
            )
            stem = os.path.splitext(os.path.basename(self._path))[0] or "values"
            self._schema = Schema((Column(stem, FLOAT64, nullable=False),))
            self.format_version = self._legacy.format_version
            self.vector_size = self._legacy.vector_size
            self._data: "bytes | memoryview" = b""
            self._rows: list[int] = [
                m.count for m in self._legacy.metadata
            ]
            self._chunks: list[list[ChunkMeta]] = []
            return
        with obs.span("tablefile.open"):
            if mmap and self._mmap_eligible():
                with open(self._path, "rb") as f:
                    self._mmap = _mmaplib.mmap(
                        f.fileno(), 0, access=_mmaplib.ACCESS_READ
                    )
                # The reader owns this view; close() refuses while
                # exported slices are live.  # reprolint: ignore[RL10]
                self._data = memoryview(self._mmap)
                if obs.ENABLED:
                    obs.metrics.counter_add(
                        "tablefile.bytes_mapped", len(self._data)
                    )
            else:
                with open(self._path, "rb") as f:
                    data = f.read()
                if obs.ENABLED:
                    obs.metrics.counter_add("tablefile.bytes_read", len(data))
                self._data = data
        try:
            self._parse_header_and_trailer()
            self._parse_footer()
        except BaseException:
            self._release_data()
            raise

    def _mmap_eligible(self) -> bool:
        try:
            return os.path.getsize(self._path) >= MMAP_MIN_BYTES
        except OSError:
            return False

    # -- lifetime -----------------------------------------------------

    @property
    def closed(self) -> bool:
        if self._legacy is not None:
            return self._legacy.closed
        return self._closed

    @property
    def mapped(self) -> bool:
        if self._legacy is not None:
            return self._legacy.mapped
        return self._mmap is not None

    def _release_data(self) -> None:
        data, self._data = self._data, b""
        if isinstance(data, memoryview):
            data.release()
        if self._mmap is not None:
            self._mmap.close()
            self._mmap = None

    def close(self) -> None:
        """Release the underlying buffer (idempotent; see v3 reader)."""
        if self._legacy is not None:
            self._legacy.close()
            return
        if self._closed:
            return
        data, self._data = self._data, b""
        if isinstance(data, memoryview):
            data.release()
        if self._mmap is not None:
            try:
                self._mmap.close()
            except BufferError:
                # Refused close: re-arm the owner's view so the reader
                # stays usable.  # reprolint: ignore[RL10]
                self._data = memoryview(self._mmap)
                raise BufferLifetimeError(self._path) from None
            self._mmap = None
        self._closed = True

    def __enter__(self) -> "TableFileReader":
        return self

    def __exit__(self, exc_type: object, *exc_info: object) -> None:
        self.close()

    def _require_open(self) -> None:
        if self.closed:
            raise ValueError(f"{self._path}: reader is closed")

    # -- open-time parsing --------------------------------------------

    def _corrupt(self, reason: str) -> CorruptFileError:
        return CorruptFileError(self._path, reason)

    def _parse_header_and_trailer(self) -> None:
        data = self._data
        if len(data) < _HEADER_LEN_V4 + _TRAILER_LEN_V4 or data[:4] != MAGIC:
            raise self._corrupt("not an ALPC table file (bad magic)")
        version = struct.unpack_from("<H", data, 4)[0]
        if version != FORMAT_VERSION_V4:
            raise self._corrupt(f"unsupported ALPC version {version}")
        self.format_version = version
        self.vector_size = struct.unpack_from("<I", data, 6)[0]
        stored = struct.unpack_from("<I", data, _HEADER_BODY)[0]
        actual = crc32c(data[:_HEADER_BODY])
        if stored != actual:
            obs.counter_add("tablefile.checksum_failures")
            raise self._corrupt(
                f"header checksum mismatch "
                f"(stored 0x{stored:08x}, computed 0x{actual:08x})"
            )
        if data[-4:] != MAGIC:
            raise self._corrupt("missing trailing magic (truncated file?)")
        self._footer_offset = struct.unpack_from("<Q", data, len(data) - 12)[0]
        footer_end = len(data) - _TRAILER_LEN_V4
        if not _HEADER_LEN_V4 <= self._footer_offset <= footer_end:
            raise self._corrupt(
                f"footer offset {self._footer_offset} outside file bounds"
            )
        self._header_len = _HEADER_LEN_V4
        self._footer_end = footer_end
        stored = struct.unpack_from("<I", data, footer_end)[0]
        actual = crc32c(data[self._footer_offset : footer_end])
        if stored != actual:
            obs.counter_add("tablefile.checksum_failures")
            raise self._corrupt(
                f"footer checksum mismatch "
                f"(stored 0x{stored:08x}, computed 0x{actual:08x})"
            )

    def _parse_footer(self) -> None:
        data = self._data
        try:
            pos = self._footer_offset
            schema_len = struct.unpack_from("<I", data, pos)[0]
            pos += 4
            if pos + schema_len > self._footer_end:
                raise self._corrupt("footer truncated (schema)")
            schema_json = _to_bytes(data[pos : pos + schema_len])
            pos += schema_len
            try:
                self._schema = Schema.from_json(schema_json.decode("utf-8"))
            except (ValueError, UnicodeDecodeError) as exc:
                raise self._corrupt(f"schema does not parse: {exc}") from exc
            n_rowgroups = struct.unpack_from("<I", data, pos)[0]
            pos += 4
            if pos + 8 * n_rowgroups > self._footer_end:
                raise self._corrupt("footer truncated (row counts)")
            self._rows = [
                int(struct.unpack_from("<Q", data, pos + 8 * i)[0])
                for i in range(n_rowgroups)
            ]
            pos += 8 * n_rowgroups
            self._chunks = []
            for rg in range(n_rowgroups):
                metas: list[ChunkMeta] = []
                for col in self._schema:
                    if pos + _CHUNK_ENTRY.size > self._footer_end:
                        raise self._corrupt("footer truncated (chunk table)")
                    (
                        offset,
                        length,
                        payload_crc,
                        zflags,
                        raw_min,
                        raw_max,
                        null_count,
                        n_vectors,
                    ) = _CHUNK_ENTRY.unpack_from(data, pos)
                    pos += _CHUNK_ENTRY.size
                    if not (
                        self._header_len <= offset
                        and offset + length <= self._footer_offset
                    ):
                        raise self._corrupt(
                            f"chunk (row-group {rg}, column {col.name!r}) "
                            f"section [{offset}, {offset + length}) outside "
                            f"the payload area"
                        )
                    if pos + n_vectors * _VZONE_ENTRY.size > self._footer_end:
                        raise self._corrupt("footer truncated (zone maps)")
                    vzones = []
                    for _ in range(n_vectors):
                        vflags, vraw_min, vraw_max, vnulls = (
                            _VZONE_ENTRY.unpack_from(data, pos)
                        )
                        pos += _VZONE_ENTRY.size
                        vzones.append(
                            ChunkZone(
                                _unpack_bound(col, vraw_min, vflags),
                                _unpack_bound(col, vraw_max, vflags),
                                bool(vflags & _ZONE_NON_FINITE),
                                vnulls,
                            )
                        )
                    metas.append(
                        ChunkMeta(
                            offset=offset,
                            length=length,
                            payload_crc=payload_crc,
                            zone=ChunkZone(
                                _unpack_bound(col, raw_min, zflags),
                                _unpack_bound(col, raw_max, zflags),
                                bool(zflags & _ZONE_NON_FINITE),
                                null_count,
                            ),
                            vector_zones=tuple(vzones),
                        )
                    )
                self._chunks.append(metas)
        except struct.error as exc:
            raise self._corrupt(f"footer does not parse: {exc}") from exc

    # -- shape --------------------------------------------------------

    @property
    def schema(self) -> Schema:
        return self._schema

    @property
    def column_names(self) -> tuple[str, ...]:
        return self._schema.names

    @property
    def rowgroup_count(self) -> int:
        if self._legacy is not None:
            return self._legacy.rowgroup_count
        return len(self._rows)

    @property
    def row_count(self) -> int:
        return sum(self._rows)

    @property
    def degraded(self) -> bool:
        return self._degraded

    @property
    def path(self) -> str:
        return self._path

    def vector_count(self, column: str) -> int:
        """Number of vectors of one column across all row-groups."""
        if self._legacy is not None:
            self._schema.column(column)
            return self._legacy.vector_count
        ci = self._schema.index(column)
        return sum(len(metas[ci].vector_zones) for metas in self._chunks)

    # -- integrity ----------------------------------------------------

    def check_chunk(self, rowgroup: int, column: str) -> "CorruptRowGroupError | None":
        """Checksum-verify one chunk (cached; no raise)."""
        if self._legacy is not None:
            self._schema.column(column)
            return self._legacy.check_rowgroup(rowgroup)
        self._require_open()
        ci = self._schema.index(column)
        key = (rowgroup, ci)
        with self._integrity_lock:
            if key in self._checked:
                return self._checked[key]
        meta = self._chunks[rowgroup][ci]
        err: "CorruptRowGroupError | None" = None
        actual = crc32c(self._data[meta.offset : meta.offset + meta.length])
        if actual != meta.payload_crc:
            err = self._chunk_error(
                rowgroup,
                ci,
                f"chunk checksum mismatch (stored 0x{meta.payload_crc:08x}, "
                f"computed 0x{actual:08x})",
                record=False,
            )
        with self._integrity_lock:
            if key not in self._checked:
                self._checked[key] = err
                if err is not None:
                    obs.counter_add("tablefile.checksum_failures")
            return self._checked[key]

    def _chunk_error(
        self, rowgroup: int, ci: int, reason: str, *, record: bool = True
    ) -> CorruptRowGroupError:
        meta = self._chunks[rowgroup][ci]
        name = self._schema.columns[ci].name
        err = CorruptRowGroupError(
            self._path,
            rowgroup,
            meta.offset,
            meta.length,
            f"column {name!r}: {reason}",
        )
        if record:
            with self._integrity_lock:
                self._checked[(rowgroup, ci)] = err
        return err

    def _quarantine(self, rowgroup: int, ci: int, err: CorruptRowGroupError) -> None:
        key = (rowgroup, ci)
        with self._integrity_lock:
            if key in self._quarantined:
                return
            self._quarantined[key] = err
        if obs.ENABLED:
            obs.metrics.counter_add("tablefile.chunks_quarantined", 1)
            obs.metrics.counter_add(
                "tablefile.values_quarantined", self._rows[rowgroup]
            )

    def scan_report(self) -> TableScanReport:
        """The structured quarantine account of this reader so far."""
        if self._legacy is not None:
            legacy = self._legacy.scan_report()
            name = self._schema.columns[0].name
            entries = tuple(
                QuarantinedChunk(
                    rowgroup=q.index,
                    column=name,
                    offset=q.offset,
                    length=q.length,
                    count=q.count,
                    reason=q.reason,
                )
                for q in legacy.quarantined
            )
            return TableScanReport(
                path=self._path,
                format_version=legacy.format_version,
                chunks_total=legacy.rowgroups_total,
                chunks_quarantined=len(entries),
                values_quarantined=legacy.values_quarantined,
                quarantined=entries,
            )
        with self._integrity_lock:
            quarantined = sorted(self._quarantined.items())
        entries = tuple(
            QuarantinedChunk(
                rowgroup=rg,
                column=self._schema.columns[ci].name,
                offset=self._chunks[rg][ci].offset,
                length=self._chunks[rg][ci].length,
                count=self._rows[rg],
                reason=err.reason,
            )
            for (rg, ci), err in quarantined
        )
        return TableScanReport(
            path=self._path,
            format_version=self.format_version,
            chunks_total=len(self._rows) * len(self._schema),
            chunks_quarantined=len(entries),
            values_quarantined=sum(e.count for e in entries),
            quarantined=entries,
        )

    # -- chunk access -------------------------------------------------

    @property
    def header_length(self) -> int:
        if self._legacy is not None:
            return self._legacy.header_length
        return self._header_len

    @property
    def footer_offset(self) -> int:
        if self._legacy is not None:
            return self._legacy.footer_offset
        return self._footer_offset

    @property
    def footer_length(self) -> int:
        if self._legacy is not None:
            return self._legacy.footer_length
        return self._footer_end - self._footer_offset

    def chunk_meta(self, rowgroup: int, column: str) -> ChunkMeta:
        ci = self._schema.index(column)
        return self._chunks[rowgroup][ci]

    def rowgroup_rows(self, rowgroup: int) -> int:
        return self._rows[rowgroup]

    def chunk_payload(self, rowgroup: int, column: str) -> memoryview:
        """Zero-copy view of one chunk section (repair path).

        Callers that need the bytes to outlive the reader must copy;
        the read path never materializes one (lint rule RL7).
        """
        self._require_open()
        ci = self._schema.index(column)
        meta = self._chunks[rowgroup][ci]
        data = self._data
        view = data if isinstance(data, memoryview) else memoryview(data)
        return view[meta.offset : meta.offset + meta.length]

    def _parse_chunk(self, rowgroup: int, ci: int) -> _ParsedChunk:
        """Decode a chunk's framing (validity + payload location).

        Raises :class:`CorruptRowGroupError` on checksum or framing
        damage, even in degraded mode (direct access is explicit).
        """
        self._require_open()
        name = self._schema.columns[ci].name
        err = self.check_chunk(rowgroup, name)
        if err is not None:
            raise err
        meta = self._chunks[rowgroup][ci]
        data = self._data
        n_rows = self._rows[rowgroup]
        try:
            pos = meta.offset
            end = meta.offset + meta.length
            flags = data[pos]
            pos += 1
            validity: "np.ndarray | None" = None
            if flags & _CHUNK_HAS_NULLS:
                bitmap_len = struct.unpack_from("<I", data, pos)[0]
                pos += 4
                if pos + bitmap_len > end:
                    raise ValueError("validity bitmap overruns chunk")
                validity = _bitmap_to_validity(
                    data[pos : pos + bitmap_len], n_rows
                )
                pos += bitmap_len
            codec = data[pos]
            pos += 1
            payload_len = struct.unpack_from("<I", data, pos)[0]
            pos += 4
            if pos + payload_len != end:
                raise ValueError(
                    f"chunk framing mismatch: payload [{pos}, "
                    f"{pos + payload_len}) vs section end {end}"
                )
        except _DECODE_ERRORS as exc:
            raise self._chunk_error(
                rowgroup, ci, f"chunk does not parse: {exc}"
            ) from exc
        return _ParsedChunk(
            validity=validity,
            codec=codec,
            payload_offset=pos,
            payload_length=payload_len,
        )

    def _decode_float_rowgroup(
        self, rowgroup: int, ci: int, parsed: _ParsedChunk
    ) -> CompressedRowGroup:
        try:
            rg, consumed = deserialize_rowgroup(
                self._data, parsed.payload_offset
            )
        except _DECODE_ERRORS as exc:
            raise self._chunk_error(
                rowgroup, ci, f"payload does not decode: {exc}"
            ) from exc
        if consumed != parsed.payload_length:
            raise self._chunk_error(
                rowgroup,
                ci,
                f"payload framing mismatch: read {consumed} bytes, "
                f"footer says {parsed.payload_length}",
            )
        return rg

    def _decode_int_frames(
        self, rowgroup: int, ci: int, parsed: _ParsedChunk
    ) -> "list[FforEncoded] | list[DeltaEncoded]":
        reader = ByteReader(self._data, parsed.payload_offset)
        try:
            n_vectors = reader.u32()
            frames: list = []
            for _ in range(n_vectors):
                if parsed.codec == CODEC_INT_FFOR:
                    frames.append(_read_ffor(reader))
                else:
                    frames.append(_read_delta(reader))
        except _DECODE_ERRORS as exc:
            raise self._chunk_error(
                rowgroup, ci, f"payload does not decode: {exc}"
            ) from exc
        consumed = reader.position - parsed.payload_offset
        if consumed != parsed.payload_length:
            raise self._chunk_error(
                rowgroup,
                ci,
                f"payload framing mismatch: read {consumed} bytes, "
                f"footer says {parsed.payload_length}",
            )
        return frames

    def _decode_string_chunk(
        self, rowgroup: int, ci: int, parsed: _ParsedChunk
    ) -> np.ndarray:
        reader = ByteReader(self._data, parsed.payload_offset)
        n_rows = self._rows[rowgroup]
        try:
            n_entries = reader.u32()
            entries = []
            for _ in range(n_entries):
                entries.append(_to_bytes(reader.raw(reader.u32())).decode("utf-8"))
            count = reader.u32()
            width = reader.u8()
            packed = reader.raw(reader.u32())
            if count != n_rows:
                raise ValueError(
                    f"string chunk has {count} values, footer says {n_rows}"
                )
            if width:
                codes = unpack_bits(packed, width, count)
            else:
                codes = np.zeros(count, dtype=np.uint64)
            if count and n_entries == 0:
                raise ValueError("string chunk has values but no dictionary")
            if count and int(codes.max()) >= n_entries:
                raise ValueError("string code outside dictionary")
        except _DECODE_ERRORS as exc:
            raise self._chunk_error(
                rowgroup, ci, f"payload does not decode: {exc}"
            ) from exc
        consumed = reader.position - parsed.payload_offset
        if consumed != parsed.payload_length:
            raise self._chunk_error(
                rowgroup,
                ci,
                f"payload framing mismatch: read {consumed} bytes, "
                f"footer says {parsed.payload_length}",
            )
        lut = np.asarray(entries, dtype=object)
        if count == 0:
            return np.empty(0, dtype=object)
        return lut[codes.astype(np.int64)]

    def read_chunk(
        self, rowgroup: int, column: str
    ) -> tuple[np.ndarray, "np.ndarray | None"]:
        """Decode one (row-group, column) chunk to (values, validity).

        Always raises on corruption, even in degraded mode; bulk reads
        (:meth:`read_columns`, :meth:`scan`) are the quarantining paths.
        """
        if self._legacy is not None:
            self._schema.column(column)
            return self._legacy.read_rowgroup(rowgroup), None
        ci = self._schema.index(column)
        col = self._schema.columns[ci]
        parsed = self._parse_chunk(rowgroup, ci)
        n_rows = self._rows[rowgroup]
        if parsed.codec == CODEC_FLOAT_ROWGROUP and col.type == FLOAT64:
            rg = self._decode_float_rowgroup(rowgroup, ci, parsed)
            column_group = CompressedRowGroups(
                rowgroups=(rg,),
                count=rg.count,
                vector_size=self.vector_size,
                stats=empty_stats(),
            )
            try:
                values = decompress(column_group)
            except _DECODE_ERRORS as exc:
                raise self._chunk_error(
                    rowgroup, ci, f"payload does not decompress: {exc}"
                ) from exc
        elif parsed.codec in (CODEC_INT_FFOR, CODEC_INT_DELTA) and col.type == INT64:
            frames = self._decode_int_frames(rowgroup, ci, parsed)
            try:
                decoded = [
                    ffor_decode(f)
                    if parsed.codec == CODEC_INT_FFOR
                    else delta_decode(f)
                    for f in frames
                ]
                values = (
                    np.concatenate(decoded)
                    if decoded
                    else np.empty(0, dtype=np.int64)
                )
            except _DECODE_ERRORS as exc:
                raise self._chunk_error(
                    rowgroup, ci, f"payload does not decompress: {exc}"
                ) from exc
        elif parsed.codec == CODEC_STRING_DICT and col.type == STRING:
            values = self._decode_string_chunk(rowgroup, ci, parsed)
        else:
            raise self._chunk_error(
                rowgroup,
                ci,
                f"codec tag {parsed.codec} does not match "
                f"column type {col.type!r}",
            )
        if len(values) != n_rows:
            raise self._chunk_error(
                rowgroup,
                ci,
                f"chunk decoded to {len(values)} values, "
                f"footer says {n_rows}",
            )
        obs.counter_add("tablefile.chunks_read")
        return values, parsed.validity

    # -- bulk reads ---------------------------------------------------

    def _resolve_columns(self, columns: "list[str] | tuple[str, ...] | None") -> list[str]:
        if columns is None:
            return list(self._schema.names)
        names = list(columns)
        if not names:
            raise ValueError("projection must name at least one column")
        for name in names:
            self._schema.column(name)
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate columns in projection: {names}")
        return names

    def read_columns(
        self, columns: "list[str] | tuple[str, ...] | None" = None
    ) -> tuple[dict[str, np.ndarray], dict[str, np.ndarray]]:
        """Decode the projected columns of the whole table.

        Returns ``(values, validity)`` dicts; ``validity`` has an entry
        per *nullable* projected column (True = valid; null slots in
        ``values`` hold the codec fill value).  In degraded mode a
        corrupt chunk quarantines its whole row-group — the rows are
        dropped from every requested column so results stay aligned.
        """
        names = self._resolve_columns(columns)
        if self._legacy is not None:
            name = names[0]
            return {name: self._legacy.read_all()}, {}
        values: dict[str, list[np.ndarray]] = {n: [] for n in names}
        validity: dict[str, list[np.ndarray]] = {
            n: [] for n in names if self._schema.column(n).nullable
        }
        for rg in range(len(self._rows)):
            decoded: dict[str, tuple[np.ndarray, "np.ndarray | None"]] = {}
            failed = False
            for name in names:
                try:
                    decoded[name] = self.read_chunk(rg, name)
                except CorruptRowGroupError as err:
                    if not self._degraded:
                        raise
                    self._quarantine(rg, self._schema.index(name), err)
                    failed = True
                    break
            if failed:
                continue
            for name in names:
                vals, mask = decoded[name]
                values[name].append(vals)
                if name in validity:
                    if mask is None:
                        mask = np.ones(len(vals), dtype=bool)
                    validity[name].append(mask)
        out_values = {
            n: _concat(parts, self._schema.column(n)) for n, parts in values.items()
        }
        out_validity = {
            n: (
                np.concatenate(parts)
                if parts
                else np.empty(0, dtype=bool)
            )
            for n, parts in validity.items()
        }
        return out_values, out_validity

    def _predicate_masks(
        self, predicate: object
    ) -> "Iterator[tuple[int, np.ndarray | None]]":
        """Per-row-group predicate masks with zone-map pruning.

        Yields ``(rowgroup, mask)`` where ``mask`` is ``None`` for
        pruned row-groups.  Vectors whose zone map excludes the range
        are never decoded; their mask slice stays all-False.
        """
        column = getattr(predicate, "column")
        low = float(getattr(predicate, "low"))
        high = float(getattr(predicate, "high"))
        ci = self._schema.index(column)
        col = self._schema.columns[ci]
        if col.type == STRING:
            raise ValueError(
                f"range predicates are not supported on string "
                f"column {column!r}"
            )
        for rg in range(len(self._rows)):
            meta = self._chunks[rg][ci]
            n_rows = self._rows[rg]
            if not meta.zone.may_contain_range(low, high):
                if obs.ENABLED:
                    obs.metrics.counter_add("tablefile.rowgroups_pruned", 1)
                    obs.metrics.counter_add(
                        "tablefile.vectors_pruned", len(meta.vector_zones)
                    )
                yield rg, None
                continue
            survivors = [
                v
                for v, zone in enumerate(meta.vector_zones)
                if zone.may_contain_range(low, high)
            ]
            if obs.ENABLED:
                obs.metrics.counter_add(
                    "tablefile.vectors_pruned",
                    len(meta.vector_zones) - len(survivors),
                )
                obs.metrics.counter_add(
                    "tablefile.vectors_decoded", len(survivors)
                )
            if not survivors:
                yield rg, None
                continue
            mask = np.zeros(n_rows, dtype=bool)
            parsed = self._parse_chunk(rg, ci)
            for v, vals in self._decode_vectors(rg, ci, parsed, survivors):
                start = v * self.vector_size
                vmask = (vals >= low) & (vals <= high)
                if parsed.validity is not None:
                    vmask &= parsed.validity[start : start + len(vals)]
                mask[start : start + len(vals)] = vmask
            yield rg, mask

    def _decode_vectors(
        self, rowgroup: int, ci: int, parsed: _ParsedChunk, vectors: list[int]
    ) -> Iterator[tuple[int, np.ndarray]]:
        """Decode only the selected vectors of a numeric chunk."""
        col = self._schema.columns[ci]
        if col.type == FLOAT64:
            from repro.core.alp import alp_decode_vector
            from repro.core.alprd import decode_vector_bits

            rg = self._decode_float_rowgroup(rowgroup, ci, parsed)
            payload_vectors = (
                rg.alp.vectors if rg.alp is not None else rg.rd.vectors
            )
            for v in vectors:
                try:
                    if rg.alp is not None:
                        values = alp_decode_vector(payload_vectors[v])
                    else:
                        from repro.alputil.bits import bits_to_double

                        values = bits_to_double(
                            decode_vector_bits(
                                payload_vectors[v], rg.rd.parameters
                            )
                        )
                except _DECODE_ERRORS as exc:
                    raise self._chunk_error(
                        rowgroup, ci, f"vector {v} does not decode: {exc}"
                    ) from exc
                yield v, values
        else:
            frames = self._decode_int_frames(rowgroup, ci, parsed)
            for v in vectors:
                try:
                    frame = frames[v]
                    values = (
                        ffor_decode(frame)
                        if parsed.codec == CODEC_INT_FFOR
                        else delta_decode(frame)
                    )
                except _DECODE_ERRORS as exc:
                    raise self._chunk_error(
                        rowgroup, ci, f"vector {v} does not decode: {exc}"
                    ) from exc
                yield v, values

    def scan(
        self,
        columns: "list[str] | tuple[str, ...] | None" = None,
        predicate: object = None,
    ) -> tuple[dict[str, np.ndarray], dict[str, np.ndarray]]:
        """Filtered projection with zone-map predicate push-down.

        ``predicate`` is any object with ``column``/``low``/``high``
        attributes (:class:`repro.query.table.FilterPredicate` fits);
        rows where the predicate column is null never match.  Returns
        the same ``(values, validity)`` shape as :meth:`read_columns`,
        restricted to matching rows.  Row-groups and vectors whose zone
        maps exclude the range are skipped without touching payload
        bytes (counted by ``tablefile.rowgroups_pruned`` /
        ``tablefile.vectors_pruned``).
        """
        if predicate is None:
            return self.read_columns(columns)
        names = self._resolve_columns(columns)
        if self._legacy is not None:
            return self._legacy_scan(names[0], predicate)
        with obs.span("tablefile.scan"):
            return self._scan_v4(names, predicate)

    def _legacy_scan(
        self, name: str, predicate: object
    ) -> tuple[dict[str, np.ndarray], dict[str, np.ndarray]]:
        if getattr(predicate, "column") != name:
            raise KeyError(
                f"predicate column {getattr(predicate, 'column')!r} not in "
                f"schema {list(self._schema.names)}"
            )
        low = float(getattr(predicate, "low"))
        high = float(getattr(predicate, "high"))
        if self._legacy is None:
            raise ValueError("_legacy_scan requires a v2/v3 file")
        parts = []
        for _rg, _v, values in self._legacy.scan_range_vectors(low, high):
            parts.append(values[(values >= low) & (values <= high)])
        merged = (
            np.concatenate(parts) if parts else np.empty(0, dtype=np.float64)
        )
        return {name: merged}, {}

    def _scan_v4(
        self, names: list[str], predicate: object
    ) -> tuple[dict[str, np.ndarray], dict[str, np.ndarray]]:
        values: dict[str, list[np.ndarray]] = {n: [] for n in names}
        validity: dict[str, list[np.ndarray]] = {
            n: [] for n in names if self._schema.column(n).nullable
        }
        pred_ci = self._schema.index(getattr(predicate, "column"))
        for rg, mask in self._predicate_masks_quarantining(predicate, pred_ci):
            if mask is None or not mask.any():
                continue
            decoded: dict[str, tuple[np.ndarray, "np.ndarray | None"]] = {}
            failed = False
            for name in names:
                try:
                    decoded[name] = self._read_chunk_masked(rg, name, mask)
                except CorruptRowGroupError as err:
                    if not self._degraded:
                        raise
                    self._quarantine(rg, self._schema.index(name), err)
                    failed = True
                    break
            if failed:
                continue
            for name in names:
                vals, vmask = decoded[name]
                values[name].append(vals)
                if name in validity:
                    if vmask is None:
                        vmask = np.ones(len(vals), dtype=bool)
                    validity[name].append(vmask)
        out_values = {
            n: _concat(parts, self._schema.column(n))
            for n, parts in values.items()
        }
        out_validity = {
            n: (np.concatenate(parts) if parts else np.empty(0, dtype=bool))
            for n, parts in validity.items()
        }
        return out_values, out_validity

    def _predicate_masks_quarantining(
        self, predicate: object, pred_ci: int
    ) -> "Iterator[tuple[int, np.ndarray | None]]":
        gen = self._predicate_masks(predicate)
        while True:
            try:
                rg_mask = next(gen)
            except StopIteration:
                return
            except CorruptRowGroupError as err:
                if not self._degraded:
                    raise
                # The generator cannot resume after raising: restart is
                # not possible mid-stream, so quarantine and stop — the
                # caller sees a shorter (still correct) result, exactly
                # like a degraded v3 scan.
                self._quarantine(err.index, pred_ci, err)
                return
            yield rg_mask

    def _read_chunk_masked(
        self, rowgroup: int, name: str, mask: np.ndarray
    ) -> tuple[np.ndarray, "np.ndarray | None"]:
        """Decode a chunk and keep only ``mask`` rows.

        Numeric chunks decode at vector granularity: vectors whose mask
        slice is empty are skipped entirely.
        """
        ci = self._schema.index(name)
        col = self._schema.columns[ci]
        if col.type == STRING:
            vals, vmask = self.read_chunk(rowgroup, name)
            return vals[mask], None if vmask is None else vmask[mask]
        parsed = self._parse_chunk(rowgroup, ci)
        vsize = self.vector_size
        needed = [
            v
            for v in range(len(self._chunks[rowgroup][ci].vector_zones))
            if mask[v * vsize : (v + 1) * vsize].any()
        ]
        parts: list[np.ndarray] = []
        mask_parts: list[np.ndarray] = []
        for v, vals in self._decode_vectors(rowgroup, ci, parsed, needed):
            vmask = mask[v * vsize : v * vsize + len(vals)]
            parts.append(vals[vmask])
            if parsed.validity is not None:
                mask_parts.append(
                    parsed.validity[v * vsize : v * vsize + len(vals)][vmask]
                )
        dtype = np.float64 if col.type == FLOAT64 else np.int64
        merged = (
            np.concatenate(parts) if parts else np.empty(0, dtype=dtype)
        )
        if parsed.validity is None:
            return merged, None
        merged_mask = (
            np.concatenate(mask_parts)
            if mask_parts
            else np.empty(0, dtype=bool)
        )
        return merged, merged_mask

    # -- column adapter -----------------------------------------------

    def column_reader(
        self, name: str
    ) -> "ColumnFileReader | TableColumnReader":
        """A :class:`ColumnFileReader`-compatible view of one column.

        Only non-nullable float64 columns are eligible — they are the
        ones the encoded-domain query engine and the serving layer
        operate on.  For v2/v3 files the underlying legacy reader is
        returned directly.
        """
        col = self._schema.column(name)
        if self._legacy is not None:
            return self._legacy
        if col.type != FLOAT64 or col.nullable:
            raise ValueError(
                f"column {name!r} ({col.type}"
                f"{', nullable' if col.nullable else ''}) has no "
                f"single-column reader; use read_columns()/scan()"
            )
        return TableColumnReader(self, self._schema.index(name))


def _concat(parts: list[np.ndarray], column: Column) -> np.ndarray:
    if not parts:
        if column.type == FLOAT64:
            return np.empty(0, dtype=np.float64)
        if column.type == INT64:
            return np.empty(0, dtype=np.int64)
        return np.empty(0, dtype=object)
    return np.concatenate(parts)


class TableColumnReader:
    """One float64 column of a v4 table, speaking the v3 reader surface.

    Implements the method contract of :class:`ColumnFileReader` (metadata,
    row-group reads, zone-map scans, quarantine reporting) over a
    single non-nullable float64 column, so :class:`FileColumnSource`,
    the serving layer, and every encoded-domain query path work on v4
    tables unchanged.
    """

    def __init__(self, parent: TableFileReader, ci: int) -> None:
        self._parent = parent
        self._ci = ci
        self._name = parent.schema.columns[ci].name
        self._cache_path = f"{parent.path}::{self._name}"
        metas = []
        for rg in range(parent.rowgroup_count):
            chunk = parent._chunks[rg][ci]
            zone = _zone_as_vectorzone(chunk.zone)
            metas.append(
                RowGroupMeta(
                    offset=chunk.offset,
                    length=chunk.length,
                    count=parent._rows[rg],
                    min_value=zone.min_value,
                    max_value=zone.max_value,
                    has_non_finite=zone.has_non_finite,
                    vector_zones=tuple(
                        _zone_as_vectorzone(z) for z in chunk.vector_zones
                    ),
                    payload_crc=chunk.payload_crc,
                )
            )
        self._meta = tuple(metas)

    # -- shape --------------------------------------------------------

    @property
    def column_name(self) -> str:
        return self._name

    @property
    def format_version(self) -> int:
        return self._parent.format_version

    @property
    def vector_size(self) -> int:
        return self._parent.vector_size

    @property
    def rowgroup_count(self) -> int:
        return len(self._meta)

    @property
    def value_count(self) -> int:
        return sum(m.count for m in self._meta)

    @property
    def metadata(self) -> tuple[RowGroupMeta, ...]:
        return self._meta

    @property
    def vector_count(self) -> int:
        return sum(len(m.vector_zones) for m in self._meta)

    @property
    def degraded(self) -> bool:
        return self._parent.degraded

    @property
    def closed(self) -> bool:
        return self._parent.closed

    @property
    def mapped(self) -> bool:
        return self._parent.mapped

    def close(self) -> None:
        """Close the underlying table reader (all column views share it)."""
        self._parent.close()

    def __enter__(self) -> "TableColumnReader":
        return self

    def __exit__(self, exc_type: object, *exc_info: object) -> None:
        self.close()

    # -- integrity ----------------------------------------------------

    def check_rowgroup(self, index: int) -> "CorruptRowGroupError | None":
        return self._parent.check_chunk(index, self._name)

    def _quarantine(self, index: int, err: CorruptRowGroupError) -> None:
        self._parent._quarantine(index, self._ci, err)

    def scan_report(self) -> ScanReport:
        """A v3-shaped per-column view of the parent's quarantine state."""
        table = self._parent.scan_report()
        entries = tuple(
            QuarantinedRowGroup(
                index=e.rowgroup,
                offset=e.offset,
                length=e.length,
                count=e.count,
                reason=e.reason,
            )
            for e in table.quarantined
            if e.column == self._name
        )
        return ScanReport(
            path=self._cache_path,
            format_version=self._parent.format_version,
            rowgroups_total=len(self._meta),
            rowgroups_quarantined=len(entries),
            values_quarantined=sum(e.count for e in entries),
            quarantined=entries,
        )

    # -- access -------------------------------------------------------

    def read_rowgroup_compressed(self, index: int) -> CompressedRowGroup:
        parsed = self._parent._parse_chunk(index, self._ci)
        if parsed.codec != CODEC_FLOAT_ROWGROUP:
            raise self._parent._chunk_error(
                index,
                self._ci,
                f"codec tag {parsed.codec} is not a float row-group",
            )
        return self._parent._decode_float_rowgroup(index, self._ci, parsed)

    def read_rowgroup(
        self, index: int, out: "np.ndarray | None" = None
    ) -> np.ndarray:
        rowgroup = self.read_rowgroup_compressed(index)
        column = CompressedRowGroups(
            rowgroups=(rowgroup,),
            count=rowgroup.count,
            vector_size=self.vector_size,
            stats=empty_stats(),
        )
        # Validate out before the decode try-block (bad caller buffers
        # raise plain ValueError, never cached as corruption).
        out = coerce_decode_out(column, out)
        try:
            return decompress(column, out=out)
        except _DECODE_ERRORS as exc:
            raise self._parent._chunk_error(
                index, self._ci, f"payload does not decompress: {exc}"
            ) from exc

    def cached_rowgroup(
        self, index: int, cache: "RowGroupCache | None" = None
    ) -> np.ndarray:
        if cache is None:
            return self.read_rowgroup(index)
        load_into = getattr(cache, "load_into", None)
        if load_into is not None:
            return load_into(
                (self._cache_path, index),
                self._meta[index].count,
                lambda out: self.read_rowgroup(index, out=out),
            )
        return cache.get_or_load(
            (self._cache_path, index), lambda: self.read_rowgroup(index)
        )

    def iter_rowgroups(
        self,
        cache: "RowGroupCache | None" = None,
        start: int = 0,
        stop: int | None = None,
    ) -> Iterator[tuple[int, np.ndarray]]:
        for index in self._rowgroup_range(start, stop):
            try:
                yield index, self.cached_rowgroup(index, cache)
            except CorruptRowGroupError as err:
                if not self.degraded:
                    raise
                self._quarantine(index, err)

    def _rowgroup_range(self, start: int, stop: int | None) -> range:
        """Validate a half-open row-group range against the footer."""
        count = len(self._meta)
        if stop is None:
            stop = count
        if not (0 <= start <= stop <= count):
            raise ValueError(
                f"row-group range [{start}, {stop}) outside [0, {count})"
            )
        return range(start, stop)

    def iter_rowgroups_compressed(
        self,
        start: int = 0,
        stop: int | None = None,
    ) -> Iterator[tuple[int, RowGroupMeta, CompressedRowGroup]]:
        for index in self._rowgroup_range(start, stop):
            try:
                rowgroup = self.read_rowgroup_compressed(index)
            except CorruptRowGroupError as err:
                if not self.degraded:
                    raise
                self._quarantine(index, err)
                continue
            yield index, self._meta[index], rowgroup

    def read_all(
        self,
        cache: "RowGroupCache | None" = None,
        out: "np.ndarray | None" = None,
    ) -> np.ndarray:
        total = self.value_count
        if out is None:
            if cache is not None and len(self._meta) == 1:
                try:
                    return self.cached_rowgroup(0, cache)
                except CorruptRowGroupError as err:
                    if not self.degraded:
                        raise
                    self._quarantine(0, err)
                    return np.empty(0, dtype=np.float64)
            target = np.empty(total, dtype=np.float64)
        else:
            if (
                not isinstance(out, np.ndarray)
                or out.dtype != np.float64
                or out.ndim != 1
                or out.size != total
            ):
                raise ValueError(
                    f"out must be a 1-D float64 array of {total} values"
                )
            if not out.flags.c_contiguous or not out.flags.writeable:
                raise ValueError("out must be C-contiguous and writable")
            target = out
        pos = 0
        for index, meta in enumerate(self._meta):
            try:
                if cache is None:
                    self.read_rowgroup(index, out=target[pos : pos + meta.count])
                else:
                    np.copyto(
                        target[pos : pos + meta.count],
                        self.cached_rowgroup(index, cache),
                    )
            except CorruptRowGroupError as err:
                if not self.degraded:
                    raise
                self._quarantine(index, err)
                continue
            pos += meta.count
        return target if pos == total else target[:pos]

    def scan_range(
        self,
        low: float,
        high: float,
        cache: "RowGroupCache | None" = None,
    ) -> Iterator[tuple[int, np.ndarray]]:
        for index, meta in enumerate(self._meta):
            if not meta.may_contain_range(low, high):
                obs.counter_add("tablefile.rowgroups_pruned")
                continue
            try:
                values = self.cached_rowgroup(index, cache)
            except CorruptRowGroupError as err:
                if not self.degraded:
                    raise
                self._quarantine(index, err)
                continue
            yield index, values

    def scan_range_vectors(
        self, low: float, high: float
    ) -> Iterator[tuple[int, int, np.ndarray]]:
        from repro.core.alp import alp_decode_vector
        from repro.core.alprd import decode_vector_bits

        for rg_index, meta in enumerate(self._meta):
            if not meta.may_contain_range(low, high):
                if obs.ENABLED:
                    obs.metrics.counter_add("tablefile.rowgroups_pruned", 1)
                    obs.metrics.counter_add(
                        "tablefile.vectors_pruned", len(meta.vector_zones)
                    )
                continue
            try:
                rowgroup = self.read_rowgroup_compressed(rg_index)
            except CorruptRowGroupError as err:
                if not self.degraded:
                    raise
                self._quarantine(rg_index, err)
                continue
            vectors = (
                rowgroup.alp.vectors
                if rowgroup.alp is not None
                else rowgroup.rd.vectors
            )
            for v_index, zone in enumerate(meta.vector_zones):
                if not zone.may_contain_range(low, high):
                    obs.counter_add("tablefile.vectors_pruned")
                    continue
                obs.counter_add("tablefile.vectors_decoded")
                if rowgroup.alp is not None:
                    values = alp_decode_vector(vectors[v_index])
                else:
                    from repro.alputil.bits import bits_to_double

                    values = bits_to_double(
                        decode_vector_bits(
                            vectors[v_index], rowgroup.rd.parameters
                        )
                    )
                yield rg_index, v_index, values

    def count_skippable(self, low: float, high: float) -> int:
        return sum(
            1 for meta in self._meta if not meta.may_contain_range(low, high)
        )

    def count_skippable_vectors(self, low: float, high: float) -> int:
        skipped = 0
        for meta in self._meta:
            if not meta.may_contain_range(low, high):
                skipped += len(meta.vector_zones)
                continue
            skipped += sum(
                1
                for zone in meta.vector_zones
                if not zone.may_contain_range(low, high)
            )
        return skipped
