"""Tests for vector-level zone maps and vector-granular scans."""

import math

import numpy as np
import pytest

from repro.data import get_dataset
from repro import api
from repro.storage.columnfile import ColumnFileReader, VectorZone


@pytest.fixture
def sorted_file(tmp_path):
    # Monotonically increasing data: every vector covers a disjoint range,
    # so range predicates isolate exactly the right vectors.
    values = np.round(np.linspace(0.0, 1000.0, 300_000), 2)
    path = tmp_path / "sorted.alpc"
    api.write(path, values)
    return path, values


class TestVectorZone:
    def test_range_test(self):
        zone = VectorZone(min_value=10.0, max_value=20.0, has_non_finite=False)
        assert zone.may_contain_range(15.0, 16.0)
        assert zone.may_contain_range(0.0, 10.0)
        assert not zone.may_contain_range(20.1, 30.0)

    def test_non_finite_is_inconclusive(self):
        zone = VectorZone(min_value=0.0, max_value=1.0, has_non_finite=True)
        assert zone.may_contain_range(1e9, 2e9)


class TestVectorGranularScan:
    def test_zone_maps_present(self, sorted_file):
        path, values = sorted_file
        reader = ColumnFileReader(path)
        assert reader.vector_count == (values.size + 1023) // 1024
        for meta in reader.metadata:
            assert len(meta.vector_zones) == (meta.count + 1023) // 1024

    def test_narrow_range_touches_few_vectors(self, sorted_file):
        path, values = sorted_file
        reader = ColumnFileReader(path)
        hits = list(reader.scan_range_vectors(500.0, 500.5))
        # ~0.05% selectivity on sorted data -> at most a couple of vectors.
        assert 1 <= len(hits) <= 3
        total_vectors = reader.vector_count
        skippable = reader.count_skippable_vectors(500.0, 500.5)
        assert skippable == total_vectors - len(hits)

    def test_scan_finds_all_matches(self, sorted_file):
        path, values = sorted_file
        reader = ColumnFileReader(path)
        low, high = 123.0, 456.0
        found = sum(
            int(((chunk >= low) & (chunk <= high)).sum())
            for _, _, chunk in reader.scan_range_vectors(low, high)
        )
        expected = int(((values >= low) & (values <= high)).sum())
        assert found == expected

    def test_vector_decode_is_bit_exact(self, sorted_file):
        path, values = sorted_file
        reader = ColumnFileReader(path)
        for rg_index, v_index, chunk in reader.scan_range_vectors(0.0, 5.0):
            start = rg_index * 102_400 + v_index * 1024
            expected = values[start : start + chunk.size]
            assert np.array_equal(
                chunk.view(np.uint64), expected.view(np.uint64)
            )

    def test_rd_rowgroups_scannable_per_vector(self, tmp_path):
        values = np.sort(get_dataset("POI-lat", n=120_000))
        path = tmp_path / "poi.alpc"
        api.write(path, values)
        reader = ColumnFileReader(path)
        low = float(values[60_000])
        high = float(values[61_000])
        found = sum(
            int(((chunk >= low) & (chunk <= high)).sum())
            for _, _, chunk in reader.scan_range_vectors(low, high)
        )
        expected = int(((values >= low) & (values <= high)).sum())
        assert found == expected
        assert reader.count_skippable_vectors(low, high) > 0

    def test_empty_range_skips_everything(self, sorted_file):
        path, _ = sorted_file
        reader = ColumnFileReader(path)
        assert list(reader.scan_range_vectors(2000.0, 3000.0)) == []
        assert (
            reader.count_skippable_vectors(2000.0, 3000.0)
            == reader.vector_count
        )

    def test_nan_vectors_never_skipped(self, tmp_path):
        values = np.round(np.linspace(0, 10, 4096), 2)
        values[2048] = math.nan
        path = tmp_path / "nan.alpc"
        api.write(path, values)
        reader = ColumnFileReader(path)
        hits = [v for _, v, _ in reader.scan_range_vectors(1e8, 1e9)]
        assert hits == [2]  # only the NaN vector is inconclusive
