"""Cascading lightweight compression (the paper's "LWC+ALP" column).

Section 4.1 of the paper shows that on duplicate-heavy columns, putting a
DICTIONARY (or RLE, when the repeats are consecutive) *in front of* ALP
and then compressing the dictionary/run-values themselves with ALP beats
both plain ALP and Zstd.  This module implements that cascade:

- ``dict+alp``  — distinct doubles ALP-compressed, codes FOR-bit-packed.
- ``rle+alp``   — run values ALP-compressed, run lengths FOR-bit-packed.
- ``alp``       — fall through to plain ALP when neither helps.

The front encoding is chosen from cheap statistics (distinct ratio and
average run length) computed on the input, and the losing options are
also sized so benchmarks can report the full trade-off.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Literal

import numpy as np

from repro.alputil.bits import bits_to_double, double_to_bits
from repro.encodings.delta import DeltaEncoded, delta_decode, delta_encode
from repro.encodings.for_ import ForEncoded, for_decode, for_encode
from repro.encodings.rle import run_boundaries

if TYPE_CHECKING:
    from repro.core.compressor import CompressedRowGroups

FrontEncoding = Literal["alp", "dict+alp", "rle+alp"]

#: How the cascade's value domain (dictionary / run values) is stored:
#: ALP-compressed doubles, or Delta over the sorted raw bit patterns —
#: the paper's "apply Delta to the Dictionary" option, which wins when
#: the domain is high-precision (e.g. NYC/29 coordinates).
DomainEncoding = Literal["alp", "delta"]

#: Use DICTIONARY when fewer than this fraction of values are distinct.
DICT_DISTINCT_THRESHOLD = 0.25
#: Use RLE when the average run is at least this long.
RLE_MIN_AVG_RUN = 4.0


@dataclass(frozen=True)
class CascadeEncoded:
    """A cascaded column: a front integer encoding over a compressed
    value domain.

    ``front`` tells which cascade was chosen.  ``codes`` carries either
    dictionary codes or run lengths (FOR-packed); ``domain`` holds the
    distinct-value / run-value / plain payload, compressed per
    ``domain_encoding``.
    """

    front: FrontEncoding
    codes: ForEncoded | None
    domain: object  # CompressedRowGroups or DeltaEncoded
    count: int
    domain_encoding: DomainEncoding = "alp"

    def size_bits(self) -> int:
        """Total footprint of the cascade."""
        bits = self.domain.size_bits()
        if self.codes is not None:
            bits += self.codes.size_bits()
        return bits + 8 + 8  # front-encoding + domain-encoding tags


def _choose_front(values: np.ndarray) -> FrontEncoding:
    """Pick the cascade front from distinct-ratio / run-length statistics."""
    bits = double_to_bits(values)
    starts = run_boundaries(bits)
    if starts.size and values.size / starts.size >= RLE_MIN_AVG_RUN:
        return "rle+alp"
    distinct = np.unique(bits).size
    if distinct / max(values.size, 1) <= DICT_DISTINCT_THRESHOLD:
        return "dict+alp"
    return "alp"


def cascade_compress(
    values: np.ndarray, front: FrontEncoding | None = None
) -> CascadeEncoded:
    """Compress doubles with an automatically chosen (or forced) cascade.

    With ``front=None`` the statistics-based candidate is encoded *and*
    compared against plain ALP by actual compressed size; the smaller one
    wins.  A cascading format can afford this: the cascade's ALP domain
    (distinct values / run values) is far smaller than the column, so the
    extra attempt is cheap relative to a mis-chosen front.
    """
    values = np.ascontiguousarray(values, dtype=np.float64)
    if front is None:
        candidate = _choose_front(values) if values.size else "alp"
        plain = cascade_compress(values, front="alp")
        if candidate == "alp":
            return plain
        cascaded = cascade_compress(values, front=candidate)
        return cascaded if cascaded.size_bits() < plain.size_bits() else plain

    from repro.core.compressor import compress  # local import: avoid cycle

    if front == "alp":
        return CascadeEncoded(
            front="alp", codes=None, domain=compress(values), count=values.size
        )

    bits = values.view(np.uint64)
    if front == "dict+alp":
        dictionary, codes = np.unique(bits, return_inverse=True)
        domain, domain_encoding = _compress_domain(
            bits_to_double(dictionary)
        )
        return CascadeEncoded(
            front="dict+alp",
            codes=for_encode(codes.astype(np.int64)),
            domain=domain,
            count=values.size,
            domain_encoding=domain_encoding,
        )

    if front == "rle+alp":
        starts = run_boundaries(bits)
        ends = np.concatenate((starts[1:], [bits.size])) if starts.size else starts
        lengths = (ends - starts).astype(np.int64)
        run_values = bits_to_double(bits[starts]) if starts.size else values[:0]
        domain, domain_encoding = _compress_domain(run_values)
        return CascadeEncoded(
            front="rle+alp",
            codes=for_encode(lengths),
            domain=domain,
            count=values.size,
            domain_encoding=domain_encoding,
        )

    raise ValueError(f"unknown cascade front {front!r}")


def _compress_domain(
    domain_values: np.ndarray,
) -> tuple["CompressedRowGroups | DeltaEncoded", str]:
    """Compress the cascade's value domain: ALP vs Delta, smaller wins.

    Delta operates on the raw bit patterns viewed as int64; for a sorted
    dictionary of same-sign doubles the patterns are monotonic, so the
    deltas are tiny even when the values are full-precision "real
    doubles" that ALP would have to store near-raw.
    """
    from repro.core.compressor import compress  # local import: avoid cycle

    alp_domain = compress(domain_values)
    delta_domain = delta_encode(
        domain_values.view(np.uint64).view(np.int64)
    )
    if delta_domain.size_bits() < alp_domain.size_bits():
        return delta_domain, "delta"
    return alp_domain, "alp"


def cascade_decompress(encoded: CascadeEncoded) -> np.ndarray:
    """Decompress a :class:`CascadeEncoded` column back to float64."""
    from repro.core.compressor import decompress  # local import: avoid cycle

    if encoded.domain_encoding == "delta":
        domain = bits_to_double(
            delta_decode(encoded.domain).view(np.uint64)
        )
    else:
        domain = decompress(encoded.domain)
    if encoded.front == "alp":
        return domain
    if encoded.front == "dict+alp":
        codes = for_decode(encoded.codes)
        return domain[codes]
    if encoded.front == "rle+alp":
        lengths = for_decode(encoded.codes)
        return np.repeat(domain, lengths)
    raise ValueError(f"unknown cascade front {encoded.front!r}")
