"""repro — a Python reproduction of *ALP: Adaptive Lossless
floating-Point Compression* (Afroozeh, Kuffó & Boncz, SIGMOD).

Quickstart::

    import numpy as np
    from repro import compress, decompress

    values = np.round(np.random.default_rng(0).normal(20.0, 5.0, 100_000), 2)
    column = compress(values)
    print(column.bits_per_value())        # ~10-14 bits instead of 64
    assert np.array_equal(decompress(column), values)

For files, datasets and integrity tooling, :mod:`repro.api` is the
one-stop facade: ``api.write`` / ``api.read`` / ``api.open`` /
``api.verify`` / ``api.repair``, all configured through a single
``CompressionOptions`` object.

Subpackages:

- :mod:`repro.api` — the unified facade over the whole pipeline.
- :mod:`repro.core` — ALP / ALP_rd, the paper's contribution.
- :mod:`repro.encodings` — FastLanes-style integer encodings (FFOR, BP,
  DICT, RLE, Delta) plus the LWC+ALP cascade.
- :mod:`repro.baselines` — Gorilla, Chimp, Chimp128, Patas, Elf, PDE and
  a general-purpose compressor, all behind one codec interface.
- :mod:`repro.storage` — a columnar on-disk format with vector skipping.
- :mod:`repro.query` — a small vectorized query engine (Tectorwise-style)
  for the end-to-end benchmarks.
- :mod:`repro.data` — synthetic generators for the paper's 30 datasets.
- :mod:`repro.analysis` — the Table 2 dataset metrics.
- :mod:`repro.bench` — the benchmark harness behind every table/figure.
"""

from repro.core.compressor import (
    CompressedRowGroups,
    compress,
    decompress,
)
from repro.core.float32 import compress_f32, decompress_f32
from repro.encodings.cascade import cascade_compress, cascade_decompress
from repro import api

__version__ = "1.0.0"

__all__ = [
    "CompressedRowGroups",
    "__version__",
    "api",
    "cascade_compress",
    "cascade_decompress",
    "compress",
    "compress_f32",
    "decompress",
    "decompress_f32",
]
