"""Automatic codec selection for a column.

ALP is the right default for decimal-origin doubles, but a *format*
wants one decision procedure covering everything: plain ALP, the
DICT/RLE cascade, the pi mode, or — for data nothing helps — raw
storage.  :func:`choose_codec` samples a column, trial-compresses the
sample under each candidate, and returns the projected winner;
:func:`compress_auto` applies it to the full column.

The trial runs on an equidistant sample of whole vectors so that both
per-vector structure (ALP's unit) and cross-vector repetition (the
cascade's food) survive sampling.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

import numpy as np

from repro.core.alppi import (
    alppi_compress,
    alppi_decompress,
    pi_mode_viable,
)
from repro.core.compressor import compress, decompress
from repro.core.constants import VECTOR_SIZE
from repro.core.sampler import equidistant_indices
from repro.encodings.cascade import cascade_compress, cascade_decompress

#: Candidate codecs in evaluation order.
AUTO_CANDIDATES = ("alp", "lwc+alp", "alp-pi")


@dataclass(frozen=True)
class CodecChoice:
    """Outcome of :func:`choose_codec`."""

    name: str
    projected_bits_per_value: float
    trials: dict[str, float]  # candidate -> sampled bits/value


def _sample_vectors(
    values: np.ndarray, vectors: int = 8, vector_size: int = VECTOR_SIZE
) -> np.ndarray:
    """Equidistant whole-vector sample of a column."""
    n_vectors = max(1, values.size // vector_size)
    picks = equidistant_indices(n_vectors, vectors)
    parts = [
        values[int(i) * vector_size : (int(i) + 1) * vector_size]
        for i in picks
    ]
    return np.concatenate(parts) if parts else values


def _trial(name: str, sample: np.ndarray) -> float:
    """Sampled bits/value of one candidate (inf when not applicable)."""
    if sample.size == 0:
        return float("inf")
    if name == "alp":
        return compress(sample).bits_per_value()
    if name == "lwc+alp":
        encoded = cascade_compress(sample)
        return encoded.size_bits() / sample.size
    if name == "alp-pi":
        viable, _ = pi_mode_viable(sample)
        if not viable:
            return float("inf")
        return alppi_compress(sample).bits_per_value()
    raise ValueError(f"unknown candidate {name!r}")


def choose_codec(
    values: np.ndarray,
    candidates: tuple[str, ...] = AUTO_CANDIDATES,
) -> CodecChoice:
    """Pick the cheapest candidate for a column from a sample."""
    values = np.ascontiguousarray(values, dtype=np.float64)
    sample = _sample_vectors(values)
    trials = {name: _trial(name, sample) for name in candidates}
    winner = min(trials, key=trials.get)
    return CodecChoice(
        name=winner,
        projected_bits_per_value=trials[winner],
        trials=trials,
    )


#: compress/decompress pairs keyed by candidate name.
_PIPELINES: dict[str, tuple[Callable, Callable]] = {
    "alp": (compress, decompress),
    "lwc+alp": (cascade_compress, cascade_decompress),
    "alp-pi": (alppi_compress, alppi_decompress),
}


@dataclass(frozen=True)
class AutoCompressed:
    """A column compressed under the auto-chosen pipeline."""

    codec: str
    payload: Any
    count: int

    def size_bits(self) -> int:
        """Compressed footprint."""
        return self.payload.size_bits()

    def bits_per_value(self) -> float:
        """Compressed bits per value."""
        return self.size_bits() / self.count if self.count else 0.0


def compress_auto(
    values: np.ndarray,
    candidates: tuple[str, ...] = AUTO_CANDIDATES,
) -> AutoCompressed:
    """Choose a codec from a sample and compress the whole column."""
    values = np.ascontiguousarray(values, dtype=np.float64)
    choice = choose_codec(values, candidates=candidates)
    compress_fn, _ = _PIPELINES[choice.name]
    return AutoCompressed(
        codec=choice.name,
        payload=compress_fn(values),
        count=values.size,
    )


def decompress_auto(encoded: AutoCompressed) -> np.ndarray:
    """Decompress an auto-compressed column."""
    _, decompress_fn = _PIPELINES[encoded.codec]
    return decompress_fn(encoded.payload)
