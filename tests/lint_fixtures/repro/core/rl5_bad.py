"""Seeded RL5 violation — a lint fixture, never imported."""


def validate(count):
    assert count >= 0, "count must be non-negative"
    return count
