"""Constants of the ALP scheme, as fixed in the paper's Section 4.

All sampling parameters are module-level so tests and ablation benches can
reference (and sweep around) the exact published configuration:

- vector size ``v = 1024``,
- row-group size ``w = 100`` vectors,
- first-level sampling: ``m = 8`` vectors per row-group, ``n = 32`` values
  per sampled vector,
- second-level sampling: ``s = 32`` values per vector,
- at most ``k = 5`` candidate (exponent, factor) combinations.
"""

from __future__ import annotations

import numpy as np

#: Values per vector (fits comfortably in L1/L2, §4 "Sampling Parameters").
VECTOR_SIZE = 1024

#: Vectors per row-group (mirrors DuckDB-style row-group sizing).
ROWGROUP_VECTORS = 100

#: Values per row-group.
ROWGROUP_SIZE = VECTOR_SIZE * ROWGROUP_VECTORS

#: First-level sampling: vectors sampled per row-group.
SAMPLES_PER_ROWGROUP = 8

#: First-level sampling: values sampled per sampled vector.
SAMPLES_PER_VECTOR_FIRST_LEVEL = 32

#: Second-level sampling: values sampled per vector.
SAMPLES_PER_VECTOR_SECOND_LEVEL = 32

#: Maximum number of candidate (e, f) combinations kept after level one.
MAX_COMBINATIONS = 5

#: Largest decimal exponent searched.  The paper's search space is
#: ``0 <= e <= 21`` with ``f <= e`` — 253 combinations.  10**e has an exact
#: double representation up to e = 22, so every table entry below is exact.
MAX_EXPONENT = 21

#: Exponent multiplier table ``F10`` from Algorithm 1 (10**0 .. 10**21).
F10 = np.array([10.0**i for i in range(MAX_EXPONENT + 1)], dtype=np.float64)

#: Inverse multiplier table ``i_F10`` from Algorithm 1.  These are *not*
#: exact doubles (Section 2.5) — that inexactness is precisely what the
#: encoder's verification step guards against.
IF10 = np.array([10.0**-i for i in range(MAX_EXPONENT + 1)], dtype=np.float64)

#: The sweet-spot constant of fast_double_round: 2**51 + 2**52.
SWEET_SPOT = float((1 << 51) + (1 << 52))

#: Bits to store one exception: 64-bit raw double + 16-bit position (§3.1).
EXCEPTION_SIZE_BITS = 64 + 16

#: Bits of per-vector metadata: exponent (8), factor (8), exception count
#: (16) — FFOR adds its own reference + bit width on top.
VECTOR_HEADER_BITS = 8 + 8 + 16

#: If the best first-level estimate exceeds this many bits per value, the
#: row-group is deemed incompressible as decimals and ALP_rd takes over
#: (the reference implementation uses the same threshold).
RD_SIZE_THRESHOLD_BITS = 48

#: ALP_rd: the cut position p must satisfy p >= 48, i.e. the left (front)
#: part is at most 16 bits wide (§3.4).
MAX_RD_LEFT_BITS = 16

#: Fast rounding only holds while |n * 10**e * 10**-f| < 2**51; anything
#: larger fails verification and becomes an exception.
ENCODING_LIMIT = float(1 << 51)

#: All 64 bits set — the mask that makes signed references wrap into
#: uint64 space (FOR/FFOR subtract in uint64 so negative references
#: round-trip losslessly).
U64_MASK = (1 << 64) - 1

#: ALP_rd: bits to store one exception — 16-bit left part + 16-bit
#: position (§3.4; left parts are at most MAX_RD_LEFT_BITS wide).
RD_EXCEPTION_SIZE_BITS = 16 + 16

#: ALP_rd: width of a skewed-dictionary code — 3 bits, i.e. at most 8
#: dictionary entries (§3.4).
RD_DICTIONARY_BITS = 3
