"""Command-line entry point for reprolint.

Invoked as ``alp-repro lint`` or ``python -m repro.lint``.  Exits 1 when
any violation is found, 0 on a clean run — which is what the
``lint-static`` CI job and ``tests/test_lint_self.py`` key off.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Sequence

from repro.lint import ALL_RULES
from repro.lint.engine import lint_paths

#: Default walk targets when no paths are given.
_DEFAULT_PATHS = ("src", "tests", "benchmarks")

#: Version of the ``--format json`` output shape.  Bump on any change to
#: the envelope or the per-violation fields; CI consumers key off it.
JSON_SCHEMA_VERSION = 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="alp-repro lint",
        description=(
            "reprolint: repo-specific static analysis (dtype/overflow, "
            "hot loops, span hygiene, format constants, bare asserts)"
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        type=Path,
        default=None,
        help="files or directories to lint (default: src tests benchmarks)",
    )
    parser.add_argument(
        "--root",
        type=Path,
        default=None,
        help="repository root used for rule scoping (default: cwd)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalog and exit",
    )
    parser.add_argument(
        "--select",
        metavar="CODES",
        default=None,
        help=(
            "comma-separated rule codes to run (e.g. RL8,RL9,RL10); "
            "default: all rules"
        ),
    )
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list_rules:
        for rule in ALL_RULES:
            print(f"{rule.code}  {rule.name}: {rule.description}")
        return 0
    rules = ALL_RULES
    if args.select:
        wanted = {
            code.strip().upper()
            for code in args.select.split(",")
            if code.strip()
        }
        unknown = wanted - {rule.code for rule in ALL_RULES}
        if unknown:
            print(
                f"unknown rule code(s): {', '.join(sorted(unknown))}",
                file=sys.stderr,
            )
            return 2
        rules = tuple(rule for rule in ALL_RULES if rule.code in wanted)
    paths = list(args.paths) if args.paths else [
        Path(p) for p in _DEFAULT_PATHS if Path(p).exists()
    ]
    violations = lint_paths(paths, root=args.root, rules=rules)
    if args.format == "json":
        print(
            json.dumps(
                {
                    "schema_version": JSON_SCHEMA_VERSION,
                    "rules": sorted(rule.code for rule in rules),
                    "violations": [v.as_dict() for v in violations],
                },
                indent=2,
            )
        )
    else:
        for violation in violations:
            print(violation.render())
        if violations:
            print(f"reprolint: {len(violations)} violation(s)")
    return 1 if violations else 0


if __name__ == "__main__":
    sys.exit(main())
