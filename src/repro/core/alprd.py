"""ALP_rd: compression for "real" doubles (Section 3.4, Algorithm 3).

When a row-group's values cannot be represented as decimals (e.g. the
POI-lat/POI-lon coordinate datasets), ALP cuts every double's 64 bits at
a position ``p >= 48`` chosen once per row-group:

- the *right* part (low ``p`` bits) is stored with plain bit-packing —
  high-precision mantissa tails are close to incompressible anyway;
- the *left* part (high ``64 - p <= 16`` bits: sign, exponent and top
  mantissa bits) has low variance and is compressed with a skewed
  dictionary of at most 8 16-bit entries plus 16-bit exceptions.

Decoding bit-unpacks both parts, patches left-part exceptions, and
*glues* them back with a shift-or.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import obs
from repro.alputil.bits import bits_to_double, double_to_bits
from repro.core.constants import (
    MAX_RD_LEFT_BITS,
    RD_EXCEPTION_SIZE_BITS,
    VECTOR_SIZE,
)
from repro.core.sampler import equidistant_indices
from repro.encodings.bitpack import pack_bits, unpack_bits
from repro.encodings.dictionary import SkewedDictionary

#: How many values per row-group the cut-position search looks at.
RD_SAMPLE_SIZE = 256


@dataclass(frozen=True)
class AlpRdParameters:
    """Row-group-level parameters of ALP_rd: cut position + dictionary."""

    right_bit_width: int  # the paper's p, >= 48 for doubles
    dictionary: SkewedDictionary
    total_bits: int = 64  # 64 for doubles, 32 for the float port

    @property
    def left_bit_width(self) -> int:
        """Width of the front-bit part (``total_bits - p``)."""
        return self.total_bits - self.right_bit_width

    def size_bits(self) -> int:
        """Row-group header: 8-bit cut position + the dictionary entries."""
        return 8 + self.dictionary.size_bits()


@dataclass(frozen=True)
class AlpRdVector:
    """One ALP_rd-encoded vector (parameters live on the row-group)."""

    left_payload: bytes  # bit-packed dictionary codes
    right_payload: bytes  # bit-packed right parts
    exc_positions: np.ndarray  # uint16
    exc_values: np.ndarray  # uint16 left parts that missed the dictionary
    count: int

    def size_bits(
        self, parameters: AlpRdParameters
    ) -> int:
        """Vector footprint: both payloads + 32 bits per exception + count."""
        return (
            len(self.left_payload) * 8
            + len(self.right_payload) * 8
            + self.exc_positions.size * RD_EXCEPTION_SIZE_BITS
            + 16  # exception count
        )


@dataclass(frozen=True)
class AlpRdRowGroup:
    """An ALP_rd-encoded row-group: shared parameters + vectors."""

    parameters: AlpRdParameters
    vectors: tuple[AlpRdVector, ...]
    count: int

    def size_bits(self) -> int:
        """Header + every vector's footprint."""
        return self.parameters.size_bits() + sum(
            v.size_bits(self.parameters) for v in self.vectors
        )

    def bits_per_value(self) -> float:
        """Compressed bits per value."""
        if self.count == 0:
            return 0.0
        return self.size_bits() / self.count


def find_best_cut(
    sample_bits: np.ndarray, total_bits: int = 64
) -> AlpRdParameters:
    """Search the cut position minimizing estimated bits per value.

    Tries every left width in ``1..16`` (i.e. ``p`` from ``total_bits - 1``
    down to ``total_bits - 16``), fitting a skewed dictionary on the
    sampled left parts each time, and keeps the cheapest estimate:
    ``right_width + code_width + exception_rate * 32`` bits per value.
    """
    sample_bits = np.asarray(sample_bits, dtype=np.uint64)
    best: AlpRdParameters | None = None
    best_cost = float("inf")
    for left_width in range(1, MAX_RD_LEFT_BITS + 1):
        right_width = total_bits - left_width
        left = sample_bits >> np.uint64(right_width)
        dictionary = SkewedDictionary.fit(left)
        _, exc_positions, _ = dictionary.encode(left)
        exc_rate = exc_positions.size / max(sample_bits.size, 1)
        cost = right_width + dictionary.code_width + exc_rate * 32
        if cost < best_cost:
            best_cost = cost
            best = AlpRdParameters(
                right_bit_width=right_width,
                dictionary=dictionary,
                total_bits=total_bits,
            )
    if best is None:
        raise RuntimeError("ALP_rd cut search produced no candidate")
    return best


def fit_parameters(
    rowgroup: np.ndarray,
    total_bits: int = 64,
    sample_size: int = RD_SAMPLE_SIZE,
) -> AlpRdParameters:
    """Sample a row-group and fit (cut position, dictionary) once."""
    if total_bits == 64:
        bits = double_to_bits(np.ascontiguousarray(rowgroup, dtype=np.float64))
    else:
        from repro.alputil.bits import float32_to_bits

        bits = float32_to_bits(
            np.ascontiguousarray(rowgroup, dtype=np.float32)
        ).astype(np.uint64)
    sample = bits[equidistant_indices(bits.size, sample_size)]
    return find_best_cut(sample, total_bits=total_bits)


def encode_vector_bits(
    bits: np.ndarray, parameters: AlpRdParameters
) -> AlpRdVector:
    """Encode one vector of raw bit patterns under fixed parameters."""
    bits = np.asarray(bits, dtype=np.uint64)
    right_width = parameters.right_bit_width
    right = bits & np.uint64((1 << right_width) - 1)
    left = bits >> np.uint64(right_width)
    codes, exc_positions, exc_values = parameters.dictionary.encode(left)
    return AlpRdVector(
        left_payload=pack_bits(codes, parameters.dictionary.code_width),
        right_payload=pack_bits(right, right_width),
        exc_positions=exc_positions,
        exc_values=exc_values,
        count=bits.size,
    )


def decode_vector_bits(
    vector: AlpRdVector, parameters: AlpRdParameters
) -> np.ndarray:
    """Decode one vector back to raw bit patterns (BITUNPACK + GLUE)."""
    right = unpack_bits(
        vector.right_payload, parameters.right_bit_width, vector.count
    )
    codes = unpack_bits(
        vector.left_payload, parameters.dictionary.code_width, vector.count
    )
    left = parameters.dictionary.decode(
        codes, vector.exc_positions, vector.exc_values
    )
    return (left << np.uint64(parameters.right_bit_width)) | right


def alprd_encode(
    rowgroup: np.ndarray,
    vector_size: int = VECTOR_SIZE,
    parameters: AlpRdParameters | None = None,
) -> AlpRdRowGroup:
    """Encode a float64 row-group with ALP_rd."""
    with obs.span("alprd.encode"):
        rowgroup = np.ascontiguousarray(rowgroup, dtype=np.float64)
        if parameters is None:
            with obs.span("alprd.fit_parameters"):
                parameters = fit_parameters(rowgroup, total_bits=64)
        bits = double_to_bits(rowgroup)
        vectors = tuple(
            encode_vector_bits(bits[start : start + vector_size], parameters)
            for start in range(0, max(bits.size, 1), vector_size)
            if bits[start : start + vector_size].size
        )
        if obs.ENABLED:
            obs.metrics.counter_add("alprd.vectors_encoded", len(vectors))
            obs.metrics.counter_add(
                "alprd.exceptions",
                sum(int(v.exc_positions.size) for v in vectors),
            )
        return AlpRdRowGroup(
            parameters=parameters, vectors=vectors, count=rowgroup.size
        )


def alprd_decode(
    rowgroup: AlpRdRowGroup, out: np.ndarray | None = None
) -> np.ndarray:
    """Decode an ALP_rd row-group back to float64, bit-exactly.

    ``out``, when given, receives the decoded doubles in place (a
    ``rowgroup.count``-sized float64 slice), letting :func:`decompress`
    fill one preallocated column instead of concatenating per-row-group
    arrays.
    """
    if not rowgroup.vectors:
        return np.empty(0, dtype=np.float64) if out is None else out
    with obs.span("alprd.decode"):
        target = np.empty(rowgroup.count, dtype=np.float64) if out is None else out
        bits = target.view(np.uint64)
        pos = 0
        for vector in rowgroup.vectors:
            bits[pos : pos + vector.count] = decode_vector_bits(
                vector, rowgroup.parameters
            )
            pos += vector.count
        obs.counter_add("alprd.vectors_decoded", len(rowgroup.vectors))
        return target
