"""Tests for the XOR-family baselines: Gorilla, Chimp, Chimp128, Patas."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.chimp import chimp_compress, chimp_decompress
from repro.baselines.chimp128 import chimp128_compress, chimp128_decompress
from repro.baselines.gorilla import gorilla_compress, gorilla_decompress
from repro.baselines.patas import patas_compress, patas_decompress

SCHEMES = {
    "gorilla": (gorilla_compress, gorilla_decompress),
    "chimp": (chimp_compress, chimp_decompress),
    "chimp128": (chimp128_compress, chimp128_decompress),
    "patas": (patas_compress, patas_decompress),
}


def bitwise_equal(a, b):
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    return a.shape == b.shape and np.array_equal(
        a.view(np.uint64), b.view(np.uint64)
    )


@pytest.fixture(params=sorted(SCHEMES))
def scheme(request):
    return SCHEMES[request.param]


class TestRoundTrips:
    def test_empty(self, scheme):
        compress, decompress = scheme
        assert decompress(compress(np.empty(0))).size == 0

    def test_single_value(self, scheme):
        compress, decompress = scheme
        values = np.array([math.pi])
        assert bitwise_equal(decompress(compress(values)), values)

    def test_constant_run(self, scheme):
        compress, decompress = scheme
        values = np.full(500, -7.25)
        assert bitwise_equal(decompress(compress(values)), values)

    def test_time_series_walk(self, scheme):
        compress, decompress = scheme
        rng = np.random.default_rng(0)
        values = np.round(np.cumsum(rng.normal(0, 0.1, 3000)) + 20.0, 2)
        assert bitwise_equal(decompress(compress(values)), values)

    def test_special_values(self, scheme):
        compress, decompress = scheme
        values = np.array(
            [0.0, -0.0, math.nan, math.inf, -math.inf, 5e-324, 1.7e308] * 3
        )
        assert bitwise_equal(decompress(compress(values)), values)

    def test_random_doubles(self, scheme):
        compress, decompress = scheme
        rng = np.random.default_rng(1)
        values = rng.uniform(-1e6, 1e6, 2000)
        assert bitwise_equal(decompress(compress(values)), values)

    @given(
        st.lists(
            st.floats(allow_nan=True, allow_infinity=True, width=64),
            max_size=200,
        )
    )
    @settings(max_examples=25, deadline=None)
    def test_arbitrary(self, xs):
        values = np.array(xs, dtype=np.float64)
        for name, (compress, decompress) in SCHEMES.items():
            assert bitwise_equal(
                decompress(compress(values)), values
            ), f"{name} failed"


class TestCompressionBehaviour:
    def test_gorilla_zero_xor_is_one_bit(self):
        values = np.full(1000, 1.5)
        encoded = gorilla_compress(values)
        # 64 bits header + ~1 bit per repeated value.
        assert encoded.size_bits() <= 64 + 1000 + 8

    def test_chimp_beats_gorilla_on_similar_values(self):
        rng = np.random.default_rng(2)
        values = np.round(np.cumsum(rng.normal(0, 0.01, 5000)) + 100.0, 2)
        chimp_bits = chimp_compress(values).bits_per_value()
        gorilla_bits = gorilla_compress(values).bits_per_value()
        assert chimp_bits < gorilla_bits

    def test_chimp128_beats_chimp_on_repeats(self):
        # Alternating pattern: Chimp128's ring finds exact matches 2 back,
        # plain Chimp XORs adjacent dissimilar values.
        values = np.tile(np.array([17.23, 91.07]), 2500)
        c128 = chimp128_compress(values).bits_per_value()
        c = chimp_compress(values).bits_per_value()
        assert c128 < c

    def test_patas_header_overhead_floor(self):
        # Patas pays >= 16 bits/value even on perfectly repetitive data —
        # the ratio-for-speed trade the paper describes.
        values = np.full(1000, 3.5)
        bits = patas_compress(values).bits_per_value()
        assert 16.0 <= bits < 17.0

    def test_xor_schemes_struggle_on_random_mantissas(self):
        rng = np.random.default_rng(3)
        values = rng.uniform(0, 1, 1000) * math.pi
        for name, (compress, _) in SCHEMES.items():
            bits = compress(values).bits_per_value()
            assert bits > 40, f"{name} should not compress random mantissas"


class TestChimp128Ring:
    def test_reference_beyond_window_not_used(self):
        # A value recurring at distance > 128 cannot be referenced: the
        # stream must still round-trip.
        values = np.concatenate(
            [np.array([42.42]), np.arange(1.0, 201.0), np.array([42.42])]
        )
        assert bitwise_equal(
            chimp128_decompress(chimp128_compress(values)), values
        )

    def test_duplicates_within_window_compress_well(self):
        rng = np.random.default_rng(4)
        pool = np.round(rng.uniform(0, 100, 16), 2)
        values = rng.choice(pool, 4096)
        bits = chimp128_compress(values).bits_per_value()
        assert bits < 16  # mostly flag 00 + index
