"""The benchmark harness behind every table and figure of the paper.

- :mod:`repro.bench.harness` — ratio measurement, timing utilities, and
  the tuples-per-cycle proxy (DESIGN.md substitution 3),
- :mod:`repro.bench.report` — fixed-width table rendering with
  paper-vs-measured columns.

The runnable experiments live in ``benchmarks/`` (one module per table /
figure) and EXPERIMENTS.md records their outcomes.
"""

from repro.bench.harness import (
    NOMINAL_GHZ,
    SpeedResult,
    bench_n,
    measure_ratio,
    time_callable,
    tuples_per_cycle,
)
from repro.bench.report import format_table, shape_check

__all__ = [
    "NOMINAL_GHZ",
    "SpeedResult",
    "bench_n",
    "format_table",
    "measure_ratio",
    "shape_check",
    "time_callable",
    "tuples_per_cycle",
]
