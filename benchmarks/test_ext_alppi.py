"""Extension — ALP-pi on pi-multiplied coordinates (paper §6 future work).

The Discussion section notes that POI-lat/POI-lon are GPS coordinates in
radians — decimals multiplied by pi/180 — and muses that a dedicated
"pi mode" would go too far.  This bench implements and evaluates that
mode on GPS-accuracy variants of the POI datasets:

- on GPS-accuracy radians (7-decimal degrees), ALP-pi reaches
  decimal-grade ratios where ALP_rd can only manage ~56 bits/value,
- on the paper's *full-precision* POI data the mode correctly declares
  itself non-viable, so the adaptive story is unchanged.
"""

from __future__ import annotations

from repro.bench.harness import bench_n
from repro.bench.report import format_table, shape_check
from repro.core.alppi import alppi_compress, alppi_decompress, pi_mode_viable
from repro.core.compressor import compress
from repro.data import get_dataset

import numpy as np

GPS_DATASETS = ("POI-lat-gps", "POI-lon-gps")
FULL_PRECISION = ("POI-lat", "POI-lon")


def _measure():
    n = min(bench_n(), 30_000)
    rows = {}
    for name in GPS_DATASETS:
        values = get_dataset(name, n=n)
        pi_column = alppi_compress(values)
        decoded = alppi_decompress(pi_column)
        assert np.array_equal(
            decoded.view(np.uint64), values.view(np.uint64)
        ), f"{name}: pi mode must stay lossless"
        rd_bits = compress(values, force_scheme="alprd").bits_per_value()
        adaptive_bits = compress(values).bits_per_value()
        rows[name] = {
            "pi": pi_column.bits_per_value(),
            "rd": rd_bits,
            "adaptive": adaptive_bits,
            "viable": pi_mode_viable(values)[0],
        }
    viability_full = {
        name: pi_mode_viable(get_dataset(name, n=n))[0]
        for name in FULL_PRECISION
    }
    return rows, viability_full


def test_ext_alppi(benchmark, emit):
    rows, viability_full = benchmark.pedantic(_measure, rounds=1, iterations=1)

    table_rows = [
        [
            name,
            rows[name]["pi"],
            rows[name]["rd"],
            rows[name]["adaptive"],
            str(rows[name]["viable"]),
        ]
        for name in GPS_DATASETS
    ]

    checks = [
        shape_check(
            "pi mode viable on GPS-accuracy radians",
            all(rows[n]["viable"] for n in GPS_DATASETS),
        ),
        shape_check(
            "pi mode at least 25% smaller than ALP_rd on GPS radians",
            all(
                rows[n]["pi"] < rows[n]["rd"] * 0.75 for n in GPS_DATASETS
            ),
        ),
        shape_check(
            "pi mode correctly non-viable on full-precision POI data",
            not any(viability_full.values()),
        ),
    ]

    report = format_table(
        ["dataset", "alp-pi bits", "alp_rd bits", "adaptive alp bits", "viable"],
        table_rows,
        float_format="{:.1f}",
        title="Extension — ALP-pi vs ALP_rd on pi-multiplied coordinates",
    )
    report += "\n" + "\n".join(checks)
    emit("ext_alppi", report)
    assert all(c.startswith("[PASS]") for c in checks), "\n" + "\n".join(checks)
