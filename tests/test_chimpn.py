"""Tests for the parameterizable ChimpN generalization."""

import numpy as np
import pytest

from repro.baselines.chimp128 import (
    chimpn_compress,
    chimpn_decompress,
)
from repro.data import get_dataset


def bitwise_equal(a, b):
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    return a.shape == b.shape and np.array_equal(
        a.view(np.uint64), b.view(np.uint64)
    )


class TestChimpN:
    @pytest.mark.parametrize("ring", [2, 8, 32, 128, 256, 1024])
    def test_roundtrip_all_ring_sizes(self, ring):
        values = get_dataset("Stocks-USA", n=4096)
        encoded = chimpn_compress(values, ring_size=ring)
        assert encoded.ring_size == ring
        assert bitwise_equal(chimpn_decompress(encoded), values)

    def test_invalid_ring_size(self):
        with pytest.raises(ValueError):
            chimpn_compress(np.zeros(4), ring_size=100)
        with pytest.raises(ValueError):
            chimpn_compress(np.zeros(4), ring_size=1)

    def test_larger_ring_helps_on_spread_duplicates(self):
        # Values recur at distance ~200: inside a 256-ring, outside 32.
        rng = np.random.default_rng(0)
        pool = np.round(rng.uniform(0, 100, 200), 2)
        values = np.tile(pool, 30)
        small = chimpn_compress(values, ring_size=32).bits_per_value()
        large = chimpn_compress(values, ring_size=256).bits_per_value()
        assert large < small

    def test_index_cost_visible_on_run_data(self):
        # On long runs, the bigger index field is pure overhead — the
        # Gov/26 effect from the paper's Section 5.
        values = np.repeat(np.array([1.5, 2.5]), 2000)
        small = chimpn_compress(values, ring_size=2).bits_per_value()
        large = chimpn_compress(values, ring_size=1024).bits_per_value()
        assert small < large
