"""Regression tests for the casts RL1 flagged on its first run.

Each fix replaced a value-wrapping ``astype`` with a ``view`` bit
reinterpretation (or justified a narrowing cast); these tests assert the
fixed paths stay bit-identical to the reference bit-matrix packer and to
first-principles Python-integer arithmetic.
"""

from __future__ import annotations

import struct

import numpy as np

from repro.alputil.bits import ieee754_exponent, ieee754_sign
from repro.core.constants import U64_MASK
from repro.encodings.bitpack import pack_bits, pack_bits_bitmatrix, unpack_bits
from repro.encodings.ffor import ffor_decode, ffor_encode
from repro.encodings.for_ import for_decode, for_encode


def test_for_encode_negative_reference_bit_identical():
    # for_.py's residual computation used astype(np.uint64) on int64
    # values (a value-wrapping cast); the view fix must keep payloads
    # bit-identical to the reference packer on negative references.
    values = np.array(
        [-5, -1, 0, 3, 2**62, -(2**62), 7, -128], dtype=np.int64
    )
    encoded = for_encode(values)
    reference = int(values.min())
    expected = np.array(
        [(int(v) - reference) & U64_MASK for v in values.tolist()],
        dtype=np.uint64,
    )
    assert encoded.reference == reference
    assert encoded.payload == pack_bits_bitmatrix(expected, encoded.bit_width)
    assert np.array_equal(for_decode(encoded), values)


def test_for_and_ffor_agree_on_extremes():
    values = np.array(
        [np.iinfo(np.int64).min, np.iinfo(np.int64).max, 0, -1, 1],
        dtype=np.int64,
    )
    for_enc = for_encode(values)
    ffor_enc = ffor_encode(values)
    assert for_enc.payload == ffor_enc.payload
    assert np.array_equal(for_decode(for_enc), values)
    assert np.array_equal(ffor_decode(ffor_enc), values)


def test_pack_plan_view_fix_bit_identical_to_bitmatrix():
    # bitpack's pack/unpack plans now derive word indices via a uint64 ->
    # int64 view instead of astype; payloads must still match the
    # reference bit-matrix packer at every width class.
    rng = np.random.default_rng(7)
    for width in (1, 3, 7, 13, 31, 33, 48, 63, 64):
        values = rng.integers(
            0, 1 << min(width, 63), size=1000, dtype=np.uint64
        )
        if width == 64:
            values[::7] = np.uint64(U64_MASK)
        packed = pack_bits(values, width)
        assert packed == pack_bits_bitmatrix(values, width)
        assert np.array_equal(unpack_bits(packed, width, values.size), values)


def test_ieee754_fields_match_struct():
    # bits.py's exponent extraction now views the masked uint64 as int64;
    # compare against first-principles struct unpacking.
    samples = np.array(
        [0.0, -0.0, 1.0, -1.0, 5e-324, -5e-324, 1e308, -1e308, 0.5, 2.0],
        dtype=np.float64,
    )
    expected_exponents = []
    expected_signs = []
    for value in samples.tolist():
        (bits,) = struct.unpack("<Q", struct.pack("<d", value))
        expected_signs.append(bits >> 63)
        expected_exponents.append((bits >> 52) & 0x7FF)
    assert np.array_equal(
        ieee754_exponent(samples), np.array(expected_exponents, dtype=np.int64)
    )
    assert np.array_equal(
        ieee754_sign(samples), np.array(expected_signs, dtype=np.uint8)
    )
