"""Shortest-decimal-representation helpers.

The paper's dataset analysis (Section 2, Table 2) measures the *visible
decimal precision* of a double: the number of digits after the decimal
point in its shortest round-tripping decimal representation (what
``repr(float)`` prints in Python).  The Elf baseline also needs this
quantity at encode time, and PDE searches for it per value.
"""

from __future__ import annotations

import math

import numpy as np

#: A double has at most 17 significant decimal digits; anything asking for
#: more precision than this cannot be decimal-origin data.
MAX_DOUBLE_DECIMALS = 17


def decimal_places(value: float) -> int:
    """Number of digits after the decimal point in the shortest repr.

    Examples: ``decimal_places(8.0605) == 4``, ``decimal_places(3.0) == 0``,
    ``decimal_places(1e-5) == 5``.  Non-finite values return
    ``MAX_DOUBLE_DECIMALS + 1`` as an "impossible" sentinel so callers can
    treat them as exceptions.
    """
    if not math.isfinite(value):
        return MAX_DOUBLE_DECIMALS + 1
    text = repr(float(value))
    if "e" in text or "E" in text:
        # Scientific notation; expand it.  float precision caps the digit
        # count so this stays bounded.
        mantissa, _, exp_text = text.lower().partition("e")
        exponent = int(exp_text)
        frac_digits = len(mantissa.partition(".")[2])
        places = frac_digits - exponent
        return max(0, min(places, 40))
    frac = text.partition(".")[2]
    if frac == "0":
        return 0
    return len(frac)


def decimal_places_array(values: np.ndarray) -> np.ndarray:
    """Vector-friendly wrapper around :func:`decimal_places`."""
    values = np.asarray(values, dtype=np.float64)
    return np.fromiter(
        (decimal_places(v) for v in values.tolist()),
        dtype=np.int64,
        count=values.size,
    )


def magnitude10(value: float) -> int:
    """Number of digits in the integer part of ``value`` (base-10 magnitude).

    ``magnitude10(146.1) == 3``, ``magnitude10(0.5) == 1`` (we count at
    least one digit, the leading zero), ``magnitude10(0.0) == 1``.
    """
    if not math.isfinite(value) or value == 0.0:
        return 1
    integral = abs(value)
    if integral < 1.0:
        return 1
    return int(math.floor(math.log10(integral))) + 1


def shortest_round(value: float, places: int) -> float:
    """Round ``value`` to ``places`` decimal digits through text.

    This is the recovery operation the Elf baseline performs at decode
    time: the nearest double to the decimal with ``places`` fraction
    digits.  Going through text avoids the binary-rounding surprises of
    ``round()`` on halfway cases.
    """
    if not math.isfinite(value):
        return value
    places = max(0, min(places, 40))
    return float(f"{value:.{places}f}")
