"""Fused Frame-Of-Reference (FFOR), the kernel under ALP.

FastLanes' FFOR fuses the FOR subtraction/addition with bit-[un]packing
into a single kernel, saving a SIMD store and load between the two loops.
The paper's Figure 5 measures a median ~40% decompression speedup from
this fusion.

In this numpy port the *fused* decoder folds the reference add into the
horizontal reduction of the unpack (one pass, no intermediate residual
array), while the *unfused* path (:func:`ffor_decode_unfused`) first
materializes the residual vector and then runs a second add pass —
the same distinction, one allocation apart.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import obs
from repro.core.constants import U64_MASK
from repro.encodings.bitpack import pack_bits


@dataclass(frozen=True)
class FforEncoded:
    """An FFOR-encoded integer vector (same storage layout as FOR)."""

    payload: bytes
    reference: int
    bit_width: int
    count: int

    def size_bits(self) -> int:
        """Packed payload + 64-bit reference + 8-bit width, per vector."""
        return len(self.payload) * 8 + 64 + 8


def ffor_encode(values: np.ndarray) -> FforEncoded:
    """Encode int64 values: subtract min and bit-pack, in one fused pass."""
    values = np.ascontiguousarray(values, dtype=np.int64)
    if values.size == 0:
        return FforEncoded(payload=b"", reference=0, bit_width=0, count=0)
    reference = int(values.min())
    ref64 = np.uint64(reference & U64_MASK)
    residuals = values.view(np.uint64) - ref64
    # One reduction serves width computation *and* pack validation; the
    # residual minimum is 0 by construction, so no sign check is needed.
    residual_max = int(residuals.max())
    width = residual_max.bit_length()
    payload = pack_bits(residuals, width, max_value=residual_max)
    if obs.ENABLED:
        obs.metrics.counter_add("ffor.vectors_encoded", 1)
        obs.metrics.counter_add("ffor.packed_bytes", len(payload))
        obs.metrics.counter_add("ffor.bit_width_sum", width)
    return FforEncoded(
        payload=payload, reference=reference, bit_width=width, count=values.size
    )


def ffor_decode(encoded: FforEncoded) -> np.ndarray:
    """Fused decode: unpack and add the reference in a single kernel.

    The reference addition is folded into the same expression that
    reconstitutes values from their bit rows, so no intermediate residual
    array is written back to memory before the add.
    """
    from repro.encodings.bitpack import unpack_bits

    obs.counter_add("ffor.vectors_decoded")
    width, count = encoded.bit_width, encoded.count
    ref64 = np.uint64(encoded.reference & U64_MASK)
    if width == 0:
        out = np.full(count, ref64, dtype=np.uint64)
        return out.view(np.int64)
    # The reference is added *in place* on the unpacker's fresh output —
    # no intermediate residual array is materialized and re-read, which
    # is the numpy rendering of FastLanes' fused subtract+unpack kernel.
    out = unpack_bits(encoded.payload, width, count)
    out += ref64
    return out.view(np.int64)


def ffor_decode_unfused(encoded: FforEncoded) -> np.ndarray:
    """Unfused decode: unpack to a residual array, then a second add pass.

    Reference implementation for the Figure 5 fusion ablation.  Produces
    bit-identical output to :func:`ffor_decode`.
    """
    from repro.encodings.bitpack import unpack_bits

    residuals = unpack_bits(encoded.payload, encoded.bit_width, encoded.count)
    residuals = np.ascontiguousarray(residuals)  # materialized store
    out = residuals + np.uint64(encoded.reference & U64_MASK)
    return out.view(np.int64)
