"""RL8 — lock discipline: guarded fields, blocking-under-lock, ordering.

PR 5/7 made the serving path concurrent: `DecodedVectorCache`,
`BufferPool` and `ColumnFileReader` all guard mutable state with a
`threading.Lock`.  Three hazards survive review by convention only:

1. **Guarded-field consistency.**  A field mutated under ``with
   self._lock`` in one method and bare in another is a data race with a
   50%-clean test suite.  Any ``self.X`` *mutated* while a lock is held
   (outside ``__init__``) marks ``X`` guarded; every other mutation of
   ``X`` in that class must then also hold a lock.
2. **Blocking or awaiting while a lock is held.**  ``time.sleep``, the
   ``open`` builtin, ``socket.*``/``subprocess.*`` calls or an ``await``
   reachable with a lock held serializes every other thread (or task)
   behind one sleeper.  The lock-held set is computed on the CFG, so a
   sleep after ``with self._lock:`` exits is fine and a sleep inside an
   ``if`` under the ``with`` is not.
3. **Lock-acquisition order.**  Acquiring B while holding A puts the
   edge A→B into a run-wide graph (name-resolved across classes and
   files: holding A while *calling* a method known to take B also
   counts, modulo a generic-name skip list).  A cycle in that graph is a
   potential deadlock; acquiring a lock already held is reported
   immediately (``threading.Lock`` is not re-entrant).

A lock is anything ``with``-entered whose final name segment contains
``lock`` (``self._lock``, ``self._integrity_lock``, a local ``lock``).
The cross-file graph accumulates between :meth:`Rule.begin_run` and
:meth:`Rule.finalize`; suppressing RL8 on the acquiring ``with`` line
keeps that site's edges out of the graph.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterator

from repro.lint.cfg import (
    CFG,
    WITH_ENTER,
    WITH_EXIT,
    Block,
    ForwardAnalysis,
    block_awaits,
    build_cfg,
    iter_evaluated,
    run_forward,
)
from repro.lint.engine import FileContext, Rule, Violation

#: Callee names too generic to resolve by name across classes.
_GENERIC_CALLEES = frozenset(
    {
        "acquire",
        "add",
        "append",
        "clear",
        "close",
        "get",
        "items",
        "join",
        "keys",
        "open",
        "pop",
        "put",
        "read",
        "release",
        "run",
        "send",
        "set",
        "start",
        "stop",
        "update",
        "values",
        "wait",
        "write",
    }
)

#: Methods whose bodies run before/outside concurrent publication.
_UNGUARDED_METHODS = frozenset({"__init__", "__new__", "__post_init__"})


def _dotted(expr: ast.AST) -> str | None:
    parts: list[str] = []
    node = expr
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def _lock_name(expr: ast.AST) -> str | None:
    """The dotted name of a lock-like ``with`` item, if it is one."""
    dotted = _dotted(expr)
    if dotted is None:
        return None
    if "lock" in dotted.rsplit(".", 1)[-1].lower():
        return dotted
    return None


class _HeldLocks(ForwardAnalysis):
    """May-held lock set: with-enter adds (on completion), exit removes."""

    def transfer(
        self, block: Block, state: frozenset[object]
    ) -> frozenset[object]:
        if block.item is None or block.kind not in (WITH_ENTER, WITH_EXIT):
            return state
        name = _lock_name(block.item.context_expr)
        if name is None:
            return state
        if block.kind == WITH_ENTER:
            return state | {name}
        return state - {name}


def _blocking_reason(call: ast.Call) -> str | None:
    func = call.func
    if isinstance(func, ast.Name) and func.id == "open":
        return "open()"
    if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
        owner, attr = func.value.id, func.attr
        if owner == "time" and attr == "sleep":
            return "time.sleep()"
        if owner in ("socket", "subprocess"):
            return f"{owner}.{attr}()"
        if owner == "os" and attr in ("fsync", "fdatasync"):
            return f"os.{attr}()"
    return None


def _callee_name(call: ast.Call) -> str | None:
    func = call.func
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return None


@dataclass(frozen=True)
class _Site:
    path: str
    line: int


@dataclass
class _FuncScope:
    func: ast.FunctionDef | ast.AsyncFunctionDef
    class_name: str | None


def _function_scopes(tree: ast.Module) -> Iterator[_FuncScope]:
    """Every function with its directly enclosing class (or None)."""

    def walk(node: ast.AST, class_name: str | None) -> Iterator[_FuncScope]:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield _FuncScope(child, class_name)
                yield from walk(child, None)
            elif isinstance(child, ast.ClassDef):
                yield from walk(child, child.name)
            else:
                yield from walk(child, class_name)

    yield from walk(tree, None)


class LockDisciplineRule(Rule):
    """RL8: guarded fields, blocking under lock, lock-order cycles."""

    code = "RL8"
    name = "lock-discipline"
    description = (
        "lock discipline under repro/server, repro/storage and repro/obs: "
        "fields guarded somewhere must be guarded everywhere, no "
        "blocking call or await while a lock is held, and the cross-"
        "class lock-acquisition-order graph must stay acyclic"
    )

    def __init__(self) -> None:
        self.begin_run()

    def begin_run(self) -> None:
        #: (held, acquired) -> first acquisition site.
        self._edges: dict[tuple[str, str], _Site] = {}
        #: method name -> locks that calling it may acquire.
        self._summaries: dict[str, set[str]] = {}
        #: calls made while holding a lock, resolved in finalize().
        self._pending: list[tuple[str, str, _Site]] = []

    def applies_to(self, ctx: FileContext) -> bool:
        if not ctx.effective or ctx.effective[0] != "repro":
            return False
        if len(ctx.effective) >= 2 and ctx.effective[1] in ("server", "storage"):
            return True
        return ctx.effective[-1] == "obs.py"

    # -- per-file pass -----------------------------------------------------

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        mutations: dict[
            str, list[tuple[str, bool, ast.AST, str]]
        ] = {}  # class -> [(field, locked, node, method)]
        for scope in _function_scopes(ctx.tree):
            func = scope.func
            cfg = build_cfg(func)
            held = run_forward(cfg, _HeldLocks())
            acquired_here: set[str] = set()
            for block in cfg.blocks:
                state = held.get(block.index)
                if state is None:
                    continue  # unreachable
                locks = sorted(str(name) for name in state)
                if block.kind == WITH_ENTER and block.item is not None:
                    name = _lock_name(block.item.context_expr)
                    if name is not None:
                        acquired_here.add(
                            self._canonical(name, scope, ctx)
                        )
                        if name in state:
                            yield self.violation(
                                ctx,
                                block.node or func,
                                f"lock {name!r} is acquired while already "
                                "held on some path; threading.Lock is not "
                                "re-entrant — this deadlocks",
                            )
                        elif locks:
                            self._record_edges(
                                locks, name, block, scope, ctx
                            )
                if not locks:
                    continue
                yield from self._check_blocking(block, locks, func, ctx)
                self._record_calls(block, locks, scope, ctx)
            if acquired_here:
                summary = self._summaries.setdefault(func.name, set())
                summary |= acquired_here
            if scope.class_name is not None:
                self._collect_mutations(
                    cfg, held, scope, mutations.setdefault(scope.class_name, [])
                )
        yield from self._check_guarded_fields(ctx, mutations)

    def _check_blocking(
        self,
        block: Block,
        locks: list[str],
        func: ast.FunctionDef | ast.AsyncFunctionDef,
        ctx: FileContext,
    ) -> Iterator[Violation]:
        held = ", ".join(repr(lock) for lock in locks)
        if block.kind in (WITH_ENTER, WITH_EXIT) and block.item is not None:
            # Entering/leaving ``async with <lock>`` awaits by design;
            # only suspension points *inside* the critical section count.
            if _lock_name(block.item.context_expr) is not None:
                return
        for mark in block_awaits(block):
            yield self.violation(
                ctx,
                mark,
                f"await while holding {held} in {func.name!r}: every "
                "other task serializes behind this suspension point",
            )
        for sub in iter_evaluated(block):
            if isinstance(sub, ast.Call):
                reason = _blocking_reason(sub)
                if reason is not None:
                    yield self.violation(
                        ctx,
                        sub,
                        f"blocking {reason} while holding {held} in "
                        f"{func.name!r}; move the blocking work outside "
                        "the lock",
                    )

    # -- guarded fields ----------------------------------------------------

    def _collect_mutations(
        self,
        cfg: CFG,
        held: dict[int, frozenset[object]],
        scope: _FuncScope,
        out: list[tuple[str, bool, ast.AST, str]],
    ) -> None:
        for block in cfg.blocks:
            state = held.get(block.index)
            if state is None:
                continue
            node = block.node
            targets: list[ast.expr] = []
            if isinstance(node, ast.Assign) and block.kind == "stmt":
                targets = list(node.targets)
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)) and (
                block.kind == "stmt"
            ):
                targets = [node.target]
            elif isinstance(node, ast.Delete) and block.kind == "stmt":
                targets = list(node.targets)
            for target in targets:
                base = target
                # ``self.x[k] = v`` mutates the container held in x.
                while isinstance(base, ast.Subscript):
                    base = base.value
                if (
                    isinstance(base, ast.Attribute)
                    and isinstance(base.value, ast.Name)
                    and base.value.id == "self"
                ):
                    out.append(
                        (base.attr, bool(state), node or base, scope.func.name)
                    )

    def _check_guarded_fields(
        self,
        ctx: FileContext,
        mutations: dict[str, list[tuple[str, bool, ast.AST, str]]],
    ) -> Iterator[Violation]:
        for class_name, entries in sorted(mutations.items()):
            guarded = {
                fname
                for fname, locked, _, method in entries
                if locked and method not in _UNGUARDED_METHODS
            }
            for fname, locked, node, method in entries:
                if (
                    fname in guarded
                    and not locked
                    and method not in _UNGUARDED_METHODS
                ):
                    yield self.violation(
                        ctx,
                        node,
                        f"field 'self.{fname}' of {class_name!r} is "
                        f"mutated under a lock elsewhere but bare in "
                        f"{method!r}; hold the lock (or rename if it is "
                        "not shared state)",
                    )

    # -- cross-file lock-order graph ---------------------------------------

    def _canonical(self, raw: str, scope: _FuncScope, ctx: FileContext) -> str:
        if raw.startswith("self.") and scope.class_name is not None:
            return f"{scope.class_name}.{raw[5:]}"
        return f"{ctx.basename}:{raw}"

    def _rl8_suppressed(self, ctx: FileContext, line: int) -> bool:
        codes = ctx.suppressions.get(line)
        return codes is not None and ("*" in codes or self.code in codes)

    def _record_edges(
        self,
        held: list[str],
        acquired_raw: str,
        block: Block,
        scope: _FuncScope,
        ctx: FileContext,
    ) -> None:
        line = block.line
        if self._rl8_suppressed(ctx, line):
            return
        site = _Site(str(ctx.path), line)
        acquired = self._canonical(acquired_raw, scope, ctx)
        for lock in held:
            edge = (self._canonical(lock, scope, ctx), acquired)
            if edge[0] != edge[1]:
                self._edges.setdefault(edge, site)

    def _record_calls(
        self,
        block: Block,
        locks: list[str],
        scope: _FuncScope,
        ctx: FileContext,
    ) -> None:
        line = block.line
        if self._rl8_suppressed(ctx, line):
            return
        site = _Site(str(ctx.path), line)
        for sub in iter_evaluated(block):
            if not isinstance(sub, ast.Call):
                continue
            callee = _callee_name(sub)
            if (
                callee is None
                or callee in _GENERIC_CALLEES
                or callee.startswith("__")
            ):
                continue
            for lock in locks:
                self._pending.append(
                    (self._canonical(lock, scope, ctx), callee, site)
                )

    def finalize(self) -> Iterator[Violation]:
        edges = dict(self._edges)
        for held, callee, site in self._pending:
            for acquired in sorted(self._summaries.get(callee, ())):
                if acquired != held:
                    edges.setdefault((held, acquired), site)
        graph: dict[str, list[str]] = {}
        for src, dst in sorted(edges):
            graph.setdefault(src, []).append(dst)
        seen_cycles: set[frozenset[str]] = set()
        for start in sorted(graph):
            cycle = self._find_cycle(graph, start)
            if cycle is None or frozenset(cycle) in seen_cycles:
                continue
            seen_cycles.add(frozenset(cycle))
            site = edges.get((cycle[0], cycle[1])) or next(iter(edges.values()))
            order = " -> ".join(cycle + [cycle[0]])
            yield Violation(
                rule=self.code,
                path=site.path,
                line=site.line,
                col=1,
                message=(
                    f"lock-order cycle {order}: two threads taking these "
                    "locks in opposite order deadlock; pick one global "
                    "order (or suppress the acquiring line with a "
                    "rationale)"
                ),
            )

    @staticmethod
    def _find_cycle(
        graph: dict[str, list[str]], start: str
    ) -> list[str] | None:
        path: list[str] = []
        on_path: set[str] = set()
        done: set[str] = set()

        def visit(node: str) -> list[str] | None:
            if node in on_path:
                return path[path.index(node) :]
            if node in done:
                return None
            path.append(node)
            on_path.add(node)
            for nxt in graph.get(node, ()):
                found = visit(nxt)
                if found is not None:
                    return found
            path.pop()
            on_path.discard(node)
            done.add(node)
            return None

        return visit(start)
