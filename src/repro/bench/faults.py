"""Storage fault-injection sweep: prove v3 corruption is never silent.

``python -m repro.bench.faults`` writes a small multi-row-group column
file, then damages **every section** of it — header, each row-group
payload, footer, trailer — with single-bit flips at several positions
plus truncations at every section boundary, and classifies what a
reader sees:

- ``detected`` — a typed :class:`~repro.storage.errors.IntegrityError`
  in strict mode, *and* (for row-group damage) the degraded reader
  quarantining exactly the damaged group while returning every other
  value bit-exactly;
- ``correct`` — the read still returns bit-identical values (possible
  only when the flip lands in dead bytes; v3 checksums cover every
  section, so this does not happen there);
- ``silent-garbage`` — wrong values with no error and no quarantine
  report.  Any occurrence fails the sweep (exit code 1): it would mean
  the checksums have a hole.

The sweep is the machine-checkable form of the format's integrity
claim, and CI runs it on every push (the ``storage-fuzz`` job).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
from dataclasses import dataclass

import numpy as np

from repro.storage.columnfile import ColumnFileReader, ColumnFileWriter
from repro.storage.errors import IntegrityError

#: Geometry small enough that the sweep runs in seconds but still has
#: several row-groups (so per-group quarantine is actually exercised).
FAULT_VECTOR_SIZE = 128
FAULT_ROWGROUP_VECTORS = 4
FAULT_VALUE_COUNT = 4 * FAULT_ROWGROUP_VECTORS * FAULT_VECTOR_SIZE

#: Relative positions probed inside each section by the bit-flip sweep.
FLIP_POSITIONS = (0.0, 0.25, 0.5, 0.75, 0.999)


@dataclass(frozen=True)
class Section:
    """One contiguous byte range of the file with a format meaning."""

    name: str  # "header", "rowgroup[i]", "footer", "trailer"
    offset: int
    length: int


@dataclass(frozen=True)
class FaultOutcome:
    """What one injected fault did to the read path."""

    section: str
    kind: str  # "bitflip" | "truncate"
    position: int
    outcome: str  # "detected" | "correct" | "silent-garbage"
    detail: str

    def as_dict(self) -> dict[str, object]:
        return {
            "section": self.section,
            "kind": self.kind,
            "position": self.position,
            "outcome": self.outcome,
            "detail": self.detail,
        }


def _make_values() -> np.ndarray:
    rng = np.random.default_rng(11)
    return np.round(
        np.cumsum(rng.normal(0, 0.2, FAULT_VALUE_COUNT)) + 30.0, 2
    )


def write_fault_file(path: str, values: np.ndarray) -> None:
    """Write the sweep's small multi-row-group v3 file."""
    with ColumnFileWriter(
        path,
        vector_size=FAULT_VECTOR_SIZE,
        rowgroup_vectors=FAULT_ROWGROUP_VECTORS,
    ) as writer:
        writer.write_values(values)


def enumerate_sections(path: str) -> list[Section]:
    """Name every byte range of a column file, in file order."""
    reader = ColumnFileReader(path)
    file_size = os.path.getsize(path)
    sections = [Section("header", 0, reader.header_length)]
    for index, meta in enumerate(reader.metadata):
        sections.append(Section(f"rowgroup[{index}]", meta.offset, meta.length))
    sections.append(
        Section("footer", reader.footer_offset, reader.footer_length)
    )
    trailer_start = reader.footer_offset + reader.footer_length
    sections.append(Section("trailer", trailer_start, file_size - trailer_start))
    return sections


def _classify_read(
    path: str, values: np.ndarray, section: Section
) -> tuple[str, str]:
    """Read a damaged file strictly and degraded; classify the outcome."""
    # Strict read: the only acceptable results are a typed integrity
    # error or bit-identical values.
    try:
        restored = ColumnFileReader(path).read_all()
    except IntegrityError as exc:
        strict = ("detected", f"strict: {type(exc).__name__}")
    else:
        if np.array_equal(
            restored.view(np.uint64), values.view(np.uint64)
        ):
            strict = ("correct", "strict: bit-identical")
        else:
            return (
                "silent-garbage",
                "strict read returned wrong values without raising",
            )

    # Degraded read over row-group damage must additionally keep every
    # *other* value and report the quarantine; header/footer/trailer
    # damage has no payload to salvage, so a typed error is the answer.
    if not section.name.startswith("rowgroup"):
        return strict
    try:
        reader = ColumnFileReader(path, degraded=True)
        restored = reader.read_all()
        report = reader.scan_report()
    except IntegrityError as exc:
        return ("detected", f"degraded: {type(exc).__name__}")
    if strict[0] == "correct":
        return strict
    if report.rowgroups_quarantined == 0:
        return (
            "silent-garbage",
            "degraded read reported nothing for a damaged row-group",
        )
    # read_all() in degraded mode is the concatenation of the intact
    # row-groups — it must match the original values minus exactly the
    # quarantined slices.
    quarantined = {q.index for q in report.quarantined}
    rg_values = FAULT_ROWGROUP_VECTORS * FAULT_VECTOR_SIZE
    expected = np.concatenate(
        [
            values[index * rg_values : (index + 1) * rg_values]
            for index in range(reader.rowgroup_count)
            if index not in quarantined
        ]
        or [np.empty(0)]
    )
    if not np.array_equal(
        restored.view(np.uint64), expected.view(np.uint64)
    ):
        return (
            "silent-garbage",
            "degraded read damaged values outside the quarantined group",
        )
    return (
        "detected",
        f"degraded: quarantined {report.rowgroups_quarantined} group(s), "
        "rest bit-identical",
    )


def run_bitflip_sweep(
    path: str, values: np.ndarray, sections: list[Section]
) -> list[FaultOutcome]:
    """Flip one bit at several positions of every section."""
    pristine = open(path, "rb").read()
    outcomes = []
    for section in sections:
        if section.length == 0:
            continue
        for rel in FLIP_POSITIONS:
            pos = section.offset + min(
                int(section.length * rel), section.length - 1
            )
            damaged = bytearray(pristine)
            damaged[pos] ^= 0x10
            with open(path, "wb") as handle:
                handle.write(damaged)
            outcome, detail = _classify_read(path, values, section)
            outcomes.append(
                FaultOutcome(section.name, "bitflip", pos, outcome, detail)
            )
    with open(path, "wb") as handle:
        handle.write(pristine)
    return outcomes


def run_truncation_sweep(
    path: str, values: np.ndarray, sections: list[Section]
) -> list[FaultOutcome]:
    """Truncate the file at (and just past) every section boundary."""
    pristine = open(path, "rb").read()
    outcomes = []
    cut_points = sorted(
        {s.offset for s in sections}
        | {s.offset + s.length for s in sections}
        | {len(pristine) - 1}
    )
    for cut in cut_points:
        if cut >= len(pristine):
            continue
        with open(path, "wb") as handle:
            handle.write(pristine[:cut])
        try:
            restored = ColumnFileReader(path).read_all()
        except IntegrityError as exc:
            outcome, detail = "detected", f"strict: {type(exc).__name__}"
        else:
            if np.array_equal(
                restored.view(np.uint64), values.view(np.uint64)
            ):
                outcome, detail = "correct", "strict: bit-identical"
            else:
                outcome, detail = (
                    "silent-garbage",
                    "truncated file read back wrong values",
                )
        outcomes.append(
            FaultOutcome("file", "truncate", cut, outcome, detail)
        )
    with open(path, "wb") as handle:
        handle.write(pristine)
    return outcomes


def run_fault_sweep(directory: str | None = None) -> list[FaultOutcome]:
    """The full sweep; returns every outcome (callers check for garbage)."""
    values = _make_values()
    with tempfile.TemporaryDirectory(dir=directory) as tmp:
        path = os.path.join(tmp, "faults.alpc")
        write_fault_file(path, values)
        sections = enumerate_sections(path)
        outcomes = run_bitflip_sweep(path, values, sections)
        outcomes += run_truncation_sweep(path, values, sections)
    return outcomes


def main(argv: list[str] | None = None) -> int:
    """Run the sweep; exit 1 on any silent-garbage outcome."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.faults",
        description="storage fault-injection sweep over every v3 section",
    )
    parser.add_argument(
        "--json", action="store_true", help="emit outcomes as JSON"
    )
    args = parser.parse_args(argv)
    outcomes = run_fault_sweep()
    garbage = [o for o in outcomes if o.outcome == "silent-garbage"]
    if args.json:
        print(
            json.dumps(
                {
                    "total": len(outcomes),
                    "silent_garbage": len(garbage),
                    "outcomes": [o.as_dict() for o in outcomes],
                },
                indent=2,
            )
        )
    else:
        detected = sum(1 for o in outcomes if o.outcome == "detected")
        correct = sum(1 for o in outcomes if o.outcome == "correct")
        print(
            f"fault sweep: {len(outcomes)} faults injected — "
            f"{detected} detected, {correct} still-correct, "
            f"{len(garbage)} silent-garbage"
        )
        for item in garbage:
            print(
                f"  SILENT GARBAGE: {item.section} {item.kind} "
                f"@{item.position}: {item.detail}"
            )
    return 1 if garbage else 0


if __name__ == "__main__":
    sys.exit(main())
