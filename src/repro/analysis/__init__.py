"""Dataset analysis: the metrics behind the paper's Section 2 / Table 2,
plus distribution histograms and a column compressibility report."""

from repro.analysis.histograms import (
    exponent_histogram,
    precision_histogram,
    render_histogram,
    xor_zero_histograms,
)
from repro.analysis.metrics import (
    DatasetMetrics,
    best_exponent_success,
    compute_metrics,
    penc_pdec_roundtrip,
    per_value_success_rate,
)
from repro.analysis.report import (
    ColumnDiagnosis,
    compressibility_report,
    diagnose_column,
)

__all__ = [
    "ColumnDiagnosis",
    "DatasetMetrics",
    "best_exponent_success",
    "compressibility_report",
    "compute_metrics",
    "diagnose_column",
    "exponent_histogram",
    "penc_pdec_roundtrip",
    "per_value_success_rate",
    "precision_histogram",
    "render_histogram",
    "xor_zero_histograms",
]
