"""E10 — Table 7: ALP_rd-32 on machine-learning model weights.

The paper compresses the float32 weights of four models and shows
ALP_rd-32 is the only floating-point encoding to achieve compression
(~28 bits/value), with Zstd around 29.7, Gorilla/Chimp/Chimp128 at
~33-34 and Patas at ~45.

Weights here are synthetic (DESIGN.md substitution 6); the XOR
comparators are the true 32-bit ports (``repro.baselines.xor32``).

Shape claims asserted:

- ALP_rd-32 achieves real compression on every model (< 32 bits/value,
  in the paper's 26..31 band) and is the *only* floating-point encoding
  that does,
- the 32-bit XOR schemes land at or above 32 bits with Patas the worst
  (the paper's ordering),
- ALP_rd-32 beats the general-purpose codec on these weights, or comes
  within 10% (paper: 28.1 vs 29.7),
- round-trips are bit-exact.
"""

from __future__ import annotations

import zlib

import numpy as np

from repro.baselines.xor32 import (
    chimp32_compress,
    chimp32_decompress,
    gorilla32_compress,
    gorilla32_decompress,
    patas32_compress,
    patas32_decompress,
)
from repro.bench.report import format_table, shape_check
from repro.core.float32 import compress_f32, decompress_f32
from repro.data import MODELS, get_model_weights
from repro.data.paper_reference import TABLE7_ML_BITS

XOR32 = {
    "gorilla": (gorilla32_compress, gorilla32_decompress),
    "chimp": (chimp32_compress, chimp32_decompress),
    "patas": (patas32_compress, patas32_decompress),
}

#: Values per model for the (pure-Python) XOR comparators.
XOR_SAMPLE = 40_000


def _measure():
    out = {}
    for name, _spec in MODELS.items():
        weights = get_model_weights(name)
        column = compress_f32(weights)
        decoded = decompress_f32(column)
        assert np.array_equal(
            decoded.view(np.uint32), weights.view(np.uint32)
        ), f"{name} round-trip failed"
        gp_bits = (
            len(zlib.compress(weights.tobytes(), 6)) * 8 / weights.size
        )
        entry = {
            "scheme": column.scheme,
            "alprd": column.bits_per_value(),
            "gp": gp_bits,
            "params": spec.synth_params,
        }
        sample = weights[:XOR_SAMPLE]
        for xor_name, (compress_fn, decompress_fn) in XOR32.items():
            encoded = compress_fn(sample)
            restored = decompress_fn(encoded)
            assert np.array_equal(
                restored.view(np.uint32), sample.view(np.uint32)
            ), (name, xor_name)
            entry[xor_name] = encoded.bits_per_value()
        out[name] = entry
    return out


def test_table7_ml_weights(benchmark, emit):
    results = benchmark.pedantic(_measure, rounds=1, iterations=1)

    rows = []
    for name, _spec in MODELS.items():
        r = results[name]
        paper = TABLE7_ML_BITS[name]
        rows.append(
            [
                name,
                r["params"],
                f"{r['gorilla']:.1f}|{paper['gorilla']:.1f}",
                f"{r['chimp']:.1f}|{paper['chimp']:.1f}",
                f"{r['patas']:.1f}|{paper['patas']:.1f}",
                f"{r['alprd']:.1f}|{paper['alprd']:.1f}",
                f"{r['gp']:.1f}|{paper['zstd']:.1f}",
            ]
        )

    checks = [
        shape_check(
            "ALP_rd-32 engages on every model",
            all(results[m]["scheme"] == "alprd" for m in MODELS),
        ),
        shape_check(
            "ALP_rd-32 achieves compression on every model "
            "(< 32 bits/value)",
            all(results[m]["alprd"] < 32.0 for m in MODELS),
        ),
        shape_check(
            "ALP_rd-32 lands in the paper's band (26..31 bits/value)",
            all(26.0 <= results[m]["alprd"] <= 31.0 for m in MODELS),
        ),
        shape_check(
            "no 32-bit XOR scheme achieves compression (>= 31.5 bits)",
            all(
                results[m][x] >= 31.5
                for m in MODELS
                for x in ("gorilla", "chimp", "patas")
            ),
        ),
        shape_check(
            "Patas-32 is the worst XOR scheme, as in the paper",
            all(
                results[m]["patas"]
                >= max(results[m]["gorilla"], results[m]["chimp"])
                for m in MODELS
            ),
        ),
        shape_check(
            "ALP_rd-32 within 10% of (or better than) the general-purpose "
            "codec",
            all(
                results[m]["alprd"] <= results[m]["gp"] * 1.10
                for m in MODELS
            ),
        ),
    ]

    report = format_table(
        [
            "model",
            "params",
            "gorilla|paper",
            "chimp|paper",
            "patas|paper",
            "alprd32|paper",
            "gp|paper-zstd",
        ],
        rows,
        title="Table 7 — 32-bit ML weights (synthetic tensors), "
        "measured|paper bits/value",
    )
    report += "\n" + "\n".join(checks)
    emit("table7_ml_weights", report)
    assert all(c.startswith("[PASS]") for c in checks), "\n" + "\n".join(checks)
