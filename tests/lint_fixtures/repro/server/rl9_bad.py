"""Seeded RL9 violations: leaks on exception/branch paths, double release."""

import os


def leaks_on_error(pool, count, fill):
    buf = pool.acquire(count)  # leak: fill() may raise before the release
    fill(buf)
    pool.release(buf)


def leaks_on_branch(pool, count, flag):
    buf = pool.acquire(count)  # leak: the early return skips the release
    if flag:
        return None
    pool.release(buf)
    return None


def double_release(pool, count):
    buf = pool.acquire(count)
    pool.release(buf)
    pool.release(buf)  # double release: already consumed on every path


def fd_leak(path):
    fd = os.open(path, os.O_RDONLY)  # leak: os.read() may raise
    data = os.read(fd, 16)
    os.close(fd)
    return data
