"""Storage fault-injection sweep: prove corruption is never silent.

``python -m repro.bench.faults`` writes a small multi-row-group column
file (format v3) and a multi-column table file (format v4), then
damages **every section** of each — header, each row-group payload /
per-column chunk, footer, trailer — with single-bit flips at several
positions plus truncations at every section boundary, and classifies
what a reader sees:

- ``detected`` — a typed :class:`~repro.storage.errors.IntegrityError`
  in strict mode, *and* (for row-group damage) the degraded reader
  quarantining exactly the damaged group while returning every other
  value bit-exactly;
- ``correct`` — the read still returns bit-identical values (possible
  only when the flip lands in dead bytes; v3 checksums cover every
  section, so this does not happen there);
- ``silent-garbage`` — wrong values with no error and no quarantine
  report.  Any occurrence fails the sweep (exit code 1): it would mean
  the checksums have a hole.

The sweep is the machine-checkable form of the format's integrity
claim, and CI runs it on every push (the ``storage-fuzz`` job).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
from dataclasses import dataclass

import numpy as np

from repro.storage.columnfile import ColumnFileReader, ColumnFileWriter
from repro.storage.errors import IntegrityError

#: Geometry small enough that the sweep runs in seconds but still has
#: several row-groups (so per-group quarantine is actually exercised).
FAULT_VECTOR_SIZE = 128
FAULT_ROWGROUP_VECTORS = 4
FAULT_VALUE_COUNT = 4 * FAULT_ROWGROUP_VECTORS * FAULT_VECTOR_SIZE

#: Relative positions probed inside each section by the bit-flip sweep.
FLIP_POSITIONS = (0.0, 0.25, 0.5, 0.75, 0.999)


@dataclass(frozen=True)
class Section:
    """One contiguous byte range of the file with a format meaning."""

    name: str  # "header", "rowgroup[i]", "footer", "trailer"
    offset: int
    length: int


@dataclass(frozen=True)
class FaultOutcome:
    """What one injected fault did to the read path."""

    section: str
    kind: str  # "bitflip" | "truncate"
    position: int
    outcome: str  # "detected" | "correct" | "silent-garbage"
    detail: str

    def as_dict(self) -> dict[str, object]:
        return {
            "section": self.section,
            "kind": self.kind,
            "position": self.position,
            "outcome": self.outcome,
            "detail": self.detail,
        }


def _make_values() -> np.ndarray:
    rng = np.random.default_rng(11)
    return np.round(
        np.cumsum(rng.normal(0, 0.2, FAULT_VALUE_COUNT)) + 30.0, 2
    )


def write_fault_file(path: str, values: np.ndarray) -> None:
    """Write the sweep's small multi-row-group v3 file."""
    with ColumnFileWriter(
        path,
        vector_size=FAULT_VECTOR_SIZE,
        rowgroup_vectors=FAULT_ROWGROUP_VECTORS,
    ) as writer:
        writer.write_values(values)


def enumerate_sections(path: str) -> list[Section]:
    """Name every byte range of a column file, in file order."""
    reader = ColumnFileReader(path)
    file_size = os.path.getsize(path)
    sections = [Section("header", 0, reader.header_length)]
    for index, meta in enumerate(reader.metadata):
        sections.append(Section(f"rowgroup[{index}]", meta.offset, meta.length))
    sections.append(
        Section("footer", reader.footer_offset, reader.footer_length)
    )
    trailer_start = reader.footer_offset + reader.footer_length
    sections.append(Section("trailer", trailer_start, file_size - trailer_start))
    return sections


def _classify_read(
    path: str, values: np.ndarray, section: Section
) -> tuple[str, str]:
    """Read a damaged file strictly and degraded; classify the outcome."""
    # Strict read: the only acceptable results are a typed integrity
    # error or bit-identical values.
    try:
        restored = ColumnFileReader(path).read_all()
    except IntegrityError as exc:
        strict = ("detected", f"strict: {type(exc).__name__}")
    else:
        if np.array_equal(
            restored.view(np.uint64), values.view(np.uint64)
        ):
            strict = ("correct", "strict: bit-identical")
        else:
            return (
                "silent-garbage",
                "strict read returned wrong values without raising",
            )

    # Degraded read over row-group damage must additionally keep every
    # *other* value and report the quarantine; header/footer/trailer
    # damage has no payload to salvage, so a typed error is the answer.
    if not section.name.startswith("rowgroup"):
        return strict
    try:
        reader = ColumnFileReader(path, degraded=True)
        restored = reader.read_all()
        report = reader.scan_report()
    except IntegrityError as exc:
        return ("detected", f"degraded: {type(exc).__name__}")
    if strict[0] == "correct":
        return strict
    if report.rowgroups_quarantined == 0:
        return (
            "silent-garbage",
            "degraded read reported nothing for a damaged row-group",
        )
    # read_all() in degraded mode is the concatenation of the intact
    # row-groups — it must match the original values minus exactly the
    # quarantined slices.
    quarantined = {q.index for q in report.quarantined}
    rg_values = FAULT_ROWGROUP_VECTORS * FAULT_VECTOR_SIZE
    expected = np.concatenate(
        [
            values[index * rg_values : (index + 1) * rg_values]
            for index in range(reader.rowgroup_count)
            if index not in quarantined
        ]
        or [np.empty(0)]
    )
    if not np.array_equal(
        restored.view(np.uint64), expected.view(np.uint64)
    ):
        return (
            "silent-garbage",
            "degraded read damaged values outside the quarantined group",
        )
    return (
        "detected",
        f"degraded: quarantined {report.rowgroups_quarantined} group(s), "
        "rest bit-identical",
    )


def run_bitflip_sweep(
    path: str, values: np.ndarray, sections: list[Section]
) -> list[FaultOutcome]:
    """Flip one bit at several positions of every section."""
    pristine = open(path, "rb").read()
    outcomes = []
    for section in sections:
        if section.length == 0:
            continue
        for rel in FLIP_POSITIONS:
            pos = section.offset + min(
                int(section.length * rel), section.length - 1
            )
            damaged = bytearray(pristine)
            damaged[pos] ^= 0x10
            with open(path, "wb") as handle:
                handle.write(damaged)
            outcome, detail = _classify_read(path, values, section)
            outcomes.append(
                FaultOutcome(section.name, "bitflip", pos, outcome, detail)
            )
    with open(path, "wb") as handle:
        handle.write(pristine)
    return outcomes


def run_truncation_sweep(
    path: str, values: np.ndarray, sections: list[Section]
) -> list[FaultOutcome]:
    """Truncate the file at (and just past) every section boundary."""
    pristine = open(path, "rb").read()
    outcomes = []
    cut_points = sorted(
        {s.offset for s in sections}
        | {s.offset + s.length for s in sections}
        | {len(pristine) - 1}
    )
    for cut in cut_points:
        if cut >= len(pristine):
            continue
        with open(path, "wb") as handle:
            handle.write(pristine[:cut])
        try:
            restored = ColumnFileReader(path).read_all()
        except IntegrityError as exc:
            outcome, detail = "detected", f"strict: {type(exc).__name__}"
        else:
            if np.array_equal(
                restored.view(np.uint64), values.view(np.uint64)
            ):
                outcome, detail = "correct", "strict: bit-identical"
            else:
                outcome, detail = (
                    "silent-garbage",
                    "truncated file read back wrong values",
                )
        outcomes.append(
            FaultOutcome("file", "truncate", cut, outcome, detail)
        )
    with open(path, "wb") as handle:
        handle.write(pristine)
    return outcomes


def run_fault_sweep(directory: str | None = None) -> list[FaultOutcome]:
    """The v3 sweep; returns every outcome (callers check for garbage)."""
    values = _make_values()
    with tempfile.TemporaryDirectory(dir=directory) as tmp:
        path = os.path.join(tmp, "faults.alpc")
        write_fault_file(path, values)
        sections = enumerate_sections(path)
        outcomes = run_bitflip_sweep(path, values, sections)
        outcomes += run_truncation_sweep(path, values, sections)
    return outcomes


# -- format v4 (multi-column tables) ----------------------------------


def _make_table() -> tuple[dict[str, np.ndarray], dict[str, np.ndarray]]:
    """The v4 sweep's table: float, nullable int, and string columns."""
    rng = np.random.default_rng(17)
    n = FAULT_VALUE_COUNT
    columns = {
        "f": np.round(np.cumsum(rng.normal(0, 0.2, n)) + 30.0, 2),
        "i": rng.integers(-50, 5000, n),
        "s": np.array(
            [f"tag-{int(v) % 7}" for v in rng.integers(0, 7, n)],
            dtype=object,
        ),
    }
    validity = {"i": rng.random(n) > 0.1}
    # Null slots decode to the codec fill value; pre-fill them so the
    # written table equals the expected read back, slot for slot.
    columns["i"][~validity["i"]] = 0
    return columns, validity


def write_fault_table(
    path: str,
    columns: dict[str, np.ndarray],
    validity: dict[str, np.ndarray],
) -> None:
    """Write the sweep's small multi-row-group v4 table file."""
    from repro.storage.schema import FLOAT64, INT64, STRING, Column, Schema
    from repro.storage.tablefile import TableFileWriter

    schema = Schema(
        (
            Column("f", FLOAT64),
            Column("i", INT64, nullable=True),
            Column("s", STRING),
        )
    )
    with TableFileWriter(
        path,
        schema,
        vector_size=FAULT_VECTOR_SIZE,
        rowgroup_vectors=FAULT_ROWGROUP_VECTORS,
    ) as writer:
        writer.write_rows(columns, validity=validity)


def enumerate_table_sections(path: str) -> list[Section]:
    """Name every byte range of a v4 table file, in file order."""
    from repro.storage.tablefile import TableFileReader

    file_size = os.path.getsize(path)
    with TableFileReader(path) as reader:
        sections = [Section("header", 0, reader.header_length)]
        for rg in range(reader.rowgroup_count):
            for name in reader.schema.names:
                meta = reader.chunk_meta(rg, name)
                sections.append(
                    Section(
                        f"chunk[{rg},{name}]", meta.offset, meta.length
                    )
                )
        sections.append(
            Section("footer", reader.footer_offset, reader.footer_length)
        )
        trailer_start = reader.footer_offset + reader.footer_length
        sections.append(
            Section("trailer", trailer_start, file_size - trailer_start)
        )
    return sections


def _column_equal(a: np.ndarray, b: np.ndarray) -> bool:
    if len(a) != len(b):
        return False
    if getattr(a, "dtype", None) is not None and a.dtype.kind == "f":
        return bool(
            np.array_equal(a.view(np.uint64), b.view(np.uint64))
        )
    if getattr(a, "dtype", None) is not None and a.dtype.kind == "O":
        return all(x == y for x, y in zip(a, b, strict=True))
    return bool(np.array_equal(a, b))


def _table_equal(
    got: tuple[dict[str, np.ndarray], dict[str, np.ndarray]],
    want: tuple[dict[str, np.ndarray], dict[str, np.ndarray]],
) -> bool:
    got_vals, got_valid = got
    want_vals, want_valid = want
    if set(got_vals) != set(want_vals) or set(got_valid) != set(want_valid):
        return False
    return all(
        _column_equal(got_vals[k], want_vals[k]) for k in want_vals
    ) and all(
        np.array_equal(got_valid[k], want_valid[k]) for k in want_valid
    )


def _expected_minus_rowgroups(
    columns: dict[str, np.ndarray],
    validity: dict[str, np.ndarray],
    dropped: set[int],
    rowgroup_count: int,
) -> tuple[dict[str, np.ndarray], dict[str, np.ndarray]]:
    """The table minus whole row-groups (the quarantine unit: a corrupt
    chunk removes its row-group's *rows* from every column)."""
    rg_rows = FAULT_ROWGROUP_VECTORS * FAULT_VECTOR_SIZE
    keep = [
        slice(rg * rg_rows, (rg + 1) * rg_rows)
        for rg in range(rowgroup_count)
        if rg not in dropped
    ]

    def cut(arr: np.ndarray) -> np.ndarray:
        if not keep:
            return arr[:0]
        return np.concatenate([arr[s] for s in keep])

    return (
        {k: cut(v) for k, v in columns.items()},
        {k: cut(v) for k, v in validity.items()},
    )


def _classify_table_read(
    path: str,
    columns: dict[str, np.ndarray],
    validity: dict[str, np.ndarray],
    section: Section,
) -> tuple[str, str]:
    """Read a damaged v4 table strictly and degraded; classify."""
    from repro.storage.tablefile import TableFileReader

    try:
        with TableFileReader(path) as reader:
            restored = reader.read_columns()
    except IntegrityError as exc:
        strict = ("detected", f"strict: {type(exc).__name__}")
    else:
        if _table_equal(restored, (columns, validity)):
            strict = ("correct", "strict: bit-identical")
        else:
            return (
                "silent-garbage",
                "strict table read returned wrong values without raising",
            )

    if not section.name.startswith("chunk"):
        return strict
    try:
        with TableFileReader(path, degraded=True) as reader:
            restored = reader.read_columns()
            report = reader.scan_report()
            rowgroup_count = reader.rowgroup_count
    except IntegrityError as exc:
        return ("detected", f"degraded: {type(exc).__name__}")
    if strict[0] == "correct":
        return strict
    if report.chunks_quarantined == 0:
        return (
            "silent-garbage",
            "degraded table read reported nothing for a damaged chunk",
        )
    dropped = {q.rowgroup for q in report.quarantined}
    expected = _expected_minus_rowgroups(
        columns, validity, dropped, rowgroup_count
    )
    if not _table_equal(restored, expected):
        return (
            "silent-garbage",
            "degraded table read damaged values outside the "
            "quarantined row-group",
        )
    return (
        "detected",
        f"degraded: quarantined {report.chunks_quarantined} chunk(s) "
        f"({len(dropped)} row-group(s) of rows), rest bit-identical",
    )


def run_table_fault_sweep(
    directory: str | None = None,
) -> list[FaultOutcome]:
    """The v4 sweep: bit-flips in every section, truncation at every
    boundary, zero silent garbage tolerated."""
    from repro.storage.tablefile import TableFileReader

    columns, validity = _make_table()
    outcomes = []
    with tempfile.TemporaryDirectory(dir=directory) as tmp:
        path = os.path.join(tmp, "faults_v4.alpc")
        write_fault_table(path, columns, validity)
        sections = enumerate_table_sections(path)
        pristine = open(path, "rb").read()

        for section in sections:
            if section.length == 0:
                continue
            for rel in FLIP_POSITIONS:
                pos = section.offset + min(
                    int(section.length * rel), section.length - 1
                )
                damaged = bytearray(pristine)
                damaged[pos] ^= 0x10
                with open(path, "wb") as handle:
                    handle.write(damaged)
                outcome, detail = _classify_table_read(
                    path, columns, validity, section
                )
                outcomes.append(
                    FaultOutcome(
                        section.name, "bitflip", pos, outcome, detail
                    )
                )

        cut_points = sorted(
            {s.offset for s in sections}
            | {s.offset + s.length for s in sections}
            | {len(pristine) - 1}
        )
        for cut in cut_points:
            if cut >= len(pristine):
                continue
            with open(path, "wb") as handle:
                handle.write(pristine[:cut])
            try:
                with TableFileReader(path) as reader:
                    restored = reader.read_columns()
            except IntegrityError as exc:
                outcome, detail = (
                    "detected",
                    f"strict: {type(exc).__name__}",
                )
            else:
                if _table_equal(restored, (columns, validity)):
                    outcome, detail = "correct", "strict: bit-identical"
                else:
                    outcome, detail = (
                        "silent-garbage",
                        "truncated table read back wrong values",
                    )
            outcomes.append(
                FaultOutcome("file", "truncate", cut, outcome, detail)
            )
        with open(path, "wb") as handle:
            handle.write(pristine)
    return outcomes


def main(argv: list[str] | None = None) -> int:
    """Run the sweep; exit 1 on any silent-garbage outcome."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.faults",
        description=(
            "storage fault-injection sweep over every v3/v4 section"
        ),
    )
    parser.add_argument(
        "--json", action="store_true", help="emit outcomes as JSON"
    )
    parser.add_argument(
        "--format",
        choices=("v3", "v4", "both"),
        default="both",
        help=(
            "which on-disk format to sweep: the v3 single-column file, "
            "the v4 multi-column table, or both (default)"
        ),
    )
    args = parser.parse_args(argv)
    outcomes = []
    if args.format in ("v3", "both"):
        outcomes += run_fault_sweep()
    if args.format in ("v4", "both"):
        outcomes += run_table_fault_sweep()
    garbage = [o for o in outcomes if o.outcome == "silent-garbage"]
    if args.json:
        print(
            json.dumps(
                {
                    "total": len(outcomes),
                    "silent_garbage": len(garbage),
                    "outcomes": [o.as_dict() for o in outcomes],
                },
                indent=2,
            )
        )
    else:
        detected = sum(1 for o in outcomes if o.outcome == "detected")
        correct = sum(1 for o in outcomes if o.outcome == "correct")
        print(
            f"fault sweep: {len(outcomes)} faults injected — "
            f"{detected} detected, {correct} still-correct, "
            f"{len(garbage)} silent-garbage"
        )
        for item in garbage:
            print(
                f"  SILENT GARBAGE: {item.section} {item.kind} "
                f"@{item.position}: {item.detail}"
            )
    return 1 if garbage else 0


if __name__ == "__main__":
    sys.exit(main())
