"""Query helpers for the end-to-end benchmarks (Table 6 / Figure 6).

Three queries, matching the paper:

- :func:`scan_query` — decompress the whole column through the scan
  operator (materializing every vector, discarding it);
- :func:`sum_query` — scan + SUM aggregation (vectorized summing work on
  top of the scan);
- :func:`comp_query` — compress the column and serialize it, including
  the metadata the paper mentions (offsets, parameters).

:func:`run_partitioned` executes a query over N partitions with a thread
pool; numpy kernels release the GIL for part of their work, so the
ALP-style vectorized sources see real scaling while the per-value Python
codecs stay serialized — a faithful, if exaggerated, analogue of
"CPU-bound codecs scale flat".
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import Callable

import numpy as np

from repro import obs
from repro.query.operators import AggregateOperator, ScanOperator
from repro.query.sources import AlpSource, ColumnSource, make_source


def scan_query(source: ColumnSource) -> int:
    """Decompress every vector; returns the number of values scanned."""
    with obs.span("query.scan"):
        scanned = 0
        vectors = 0
        for vector in ScanOperator(source):
            scanned += vector.size
            vectors += 1
        if obs.ENABLED:
            obs.metrics.counter_add("query.vectors_scanned", vectors)
            obs.metrics.counter_add("query.values_scanned", scanned)
        return scanned


def sum_query(source: ColumnSource) -> float:
    """SUM aggregation over the scan."""
    with obs.span("query.sum"):
        result = AggregateOperator(ScanOperator(source), kind="sum").result()
    obs.counter_add("query.sum_queries")
    return result


def comp_query(codec_name: str, values: np.ndarray) -> int:
    """Compress ``values`` under a codec; returns compressed bits.

    For ALP this includes serializing to the on-disk layout, mirroring
    the paper's note that COMP "also writes extra meta-data for the
    compressed blocks".
    """
    with obs.span("query.comp"):
        source = make_source(codec_name, values)
        if isinstance(source, AlpSource):
            from repro.storage.serializer import serialize_rowgroup

            total = 0
            for rowgroup in source.column.rowgroups:
                total += len(serialize_rowgroup(rowgroup)) * 8
            return total
        return source.compressed_bits


def run_partitioned(
    source: ColumnSource,
    query: Callable[[ColumnSource], float],
    threads: int,
) -> list[float]:
    """Run ``query`` over ``threads`` partitions of ``source`` in parallel.

    Returns the per-partition results (sum them for a global aggregate).
    """
    partitions = source.partition(threads)
    if len(partitions) == 1:
        return [query(partitions[0])]
    with ThreadPoolExecutor(max_workers=len(partitions)) as pool:
        return list(pool.map(query, partitions))
