"""The reprolint rule engine: file walking, suppressions, rule dispatch.

The engine is deliberately small: it parses each file once, extracts the
comment/suppression map with :mod:`tokenize`, computes the file's
*effective path* (the repo-relative path used for rule scoping), and
hands a :class:`FileContext` to every rule whose scope matches.

Scoping works on path segments.  ``src/repro/encodings/bitpack.py`` has
the effective parts ``("repro", "encodings", "bitpack.py")`` — the
leading ``src`` is dropped so rules can say "applies under
``repro/core``".  Files below a ``lint_fixtures`` directory are scoped
by their path *relative to that directory*, so a fixture at
``tests/lint_fixtures/repro/core/rl1_bad.py`` is linted exactly as if it
lived at ``src/repro/core/rl1_bad.py``.  That is what lets the seeded
bad-example fixtures trigger scoped rules from inside ``tests/``.

Suppression syntax (see ``docs/STATIC_ANALYSIS.md``):

- ``# reprolint: ignore[RL1]`` — suppress RL1 on this line (trailing
  comment) or on the next line (standalone comment line);
- ``# reprolint: ignore[RL1,RL4]`` — several rules at once;
- ``# reprolint: ignore`` — every rule on that line;
- ``# reprolint: skip-file`` — anywhere in the file: skip it entirely.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator, Sequence

#: Matches one suppression comment; ``codes`` empty means "all rules".
_SUPPRESS_RE = re.compile(
    r"#\s*reprolint:\s*ignore(?:\[(?P<codes>[A-Za-z0-9_,\s]*)\])?"
)
_SKIP_FILE_RE = re.compile(r"#\s*reprolint:\s*skip-file\b")

#: Directory names never descended into when expanding directories.
_SKIP_DIRS = {
    "__pycache__",
    ".git",
    ".venv",
    "venv",
    "build",
    "dist",
    "node_modules",
}

#: Fixture directories are excluded from *implicit* directory walks (the
#: repo must lint clean) but linted when passed explicitly.
_FIXTURE_DIR = "lint_fixtures"


@dataclass(frozen=True)
class Violation:
    """One rule violation at a source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str

    def render(self) -> str:
        """``path:line:col: CODE message`` — the CLI text format."""
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"

    def as_dict(self) -> dict[str, object]:
        """JSON-ready representation (the CLI ``--format json`` shape)."""
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }


@dataclass(frozen=True)
class FileContext:
    """Everything a rule needs to know about one parsed file."""

    path: Path
    #: Repo-relative path segments used for scoping (``src`` stripped,
    #: fixture prefix stripped — see the module docstring).
    effective: tuple[str, ...]
    tree: ast.Module
    source: str
    #: line number -> suppressed rule codes ("*" suppresses everything).
    suppressions: dict[int, frozenset[str]]
    #: Lines carrying any comment at all (RL1 narrowing-cast justification).
    comment_lines: frozenset[int]

    @property
    def basename(self) -> str:
        """Final path segment (the file name)."""
        return self.effective[-1] if self.effective else self.path.name


class Rule:
    """Base class for reprolint rules.

    Subclasses set :attr:`code` / :attr:`name` / :attr:`description`,
    implement :meth:`applies_to` for path scoping and :meth:`check` to
    yield violations.  ``description`` feeds ``--list-rules`` and the
    rule catalog in ``docs/STATIC_ANALYSIS.md``.
    """

    code: str = "RL0"
    name: str = "base"
    description: str = ""

    def applies_to(self, ctx: FileContext) -> bool:
        """Whether this rule runs on ``ctx`` (path-segment scoping)."""
        raise NotImplementedError

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        """Yield every violation found in ``ctx``."""
        raise NotImplementedError

    def begin_run(self) -> None:
        """Reset any cross-file state; called once before a lint run."""

    def finalize(self) -> Iterator[Violation]:
        """Yield run-wide violations after every file was checked.

        Rules that accumulate cross-file facts (RL8's lock-acquisition
        -order graph) report here.  Per-line suppression cannot apply —
        there is no single line — so such rules must honour
        suppressions when *recording* facts in :meth:`check`.
        """
        return iter(())

    def violation(
        self, ctx: FileContext, node: ast.AST, message: str
    ) -> Violation:
        """Build a :class:`Violation` anchored at ``node``."""
        return Violation(
            rule=self.code,
            path=str(ctx.path),
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            message=message,
        )


def _collect_comments(
    source: str,
) -> tuple[dict[int, frozenset[str]], frozenset[int], bool]:
    """Extract (suppressions, commented lines, skip-file) from source.

    A standalone suppression comment (nothing but the comment on its
    line) also applies to the following line, so justifications can sit
    above long statements.
    """
    suppressions: dict[int, set[str]] = {}
    comment_lines: set[int] = set()
    skip_file = False
    lines = source.splitlines()
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, SyntaxError, IndentationError):
        return {}, frozenset(), False
    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        line_no = token.start[0]
        comment_lines.add(line_no)
        if _SKIP_FILE_RE.search(token.string):
            skip_file = True
        match = _SUPPRESS_RE.search(token.string)
        if match is None:
            continue
        raw = match.group("codes")
        codes = (
            {"*"}
            if raw is None or not raw.strip()
            else {code.strip().upper() for code in raw.split(",") if code.strip()}
        )
        targets = [line_no]
        line_text = lines[line_no - 1] if line_no - 1 < len(lines) else ""
        if line_text.strip().startswith("#"):
            targets.append(line_no + 1)
        for target in targets:
            suppressions.setdefault(target, set()).update(codes)
    return (
        {line: frozenset(codes) for line, codes in suppressions.items()},
        frozenset(comment_lines),
        skip_file,
    )


def _expand_suppressions(
    tree: ast.Module, suppressions: dict[int, frozenset[str]]
) -> dict[int, frozenset[str]]:
    """Map suppressions anywhere in a statement's header onto its line.

    Rules may anchor a violation on *any* physical line of a statement's
    header (a literal on a continuation line, a decorator argument), but
    the suppression comment physically fits where there is room — the
    closing paren line, the decorator line.  For every statement, the
    union of suppressions across its header span — first line through
    the line before its body (simple statements: through ``end_lineno``)
    — plus its decorator lines applies to every line of that span.  Body
    lines are deliberately excluded: a pragma on a ``def`` never
    blankets the function body.
    """
    if not suppressions:
        return suppressions
    expanded: dict[int, set[str]] = {
        line: set(codes) for line, codes in suppressions.items()
    }
    for node in ast.walk(tree):
        if not isinstance(node, ast.stmt):
            continue
        start = node.lineno
        body = getattr(node, "body", None)
        if isinstance(body, list) and body and isinstance(body[0], ast.stmt):
            header_end = max(start, body[0].lineno - 1)
        else:
            header_end = getattr(node, "end_lineno", None) or start
        decorators = getattr(node, "decorator_list", None) or []
        lines = set(range(start, header_end + 1))
        for decorator in decorators:
            end = getattr(decorator, "end_lineno", None) or decorator.lineno
            lines.update(range(decorator.lineno, end + 1))
        pooled: set[str] = set()
        for line in lines:
            pooled.update(suppressions.get(line, ()))
        if not pooled:
            continue
        for line in lines:
            expanded.setdefault(line, set()).update(pooled)
    return {line: frozenset(codes) for line, codes in expanded.items()}


def effective_parts(path: Path, root: Path) -> tuple[str, ...]:
    """Path segments used for rule scoping (see the module docstring)."""
    try:
        rel = path.resolve().relative_to(root.resolve())
    except ValueError:
        rel = Path(path.name)
    parts = list(rel.parts)
    if _FIXTURE_DIR in parts:
        parts = parts[parts.index(_FIXTURE_DIR) + 1 :]
    if parts and parts[0] == "src":
        parts = parts[1:]
    return tuple(parts)


def parse_file(path: Path, root: Path) -> FileContext | None:
    """Parse one file into a :class:`FileContext` (None = skip-file)."""
    source = path.read_text(encoding="utf-8")
    suppressions, comment_lines, skip_file = _collect_comments(source)
    if skip_file:
        return None
    tree = ast.parse(source, filename=str(path))
    return FileContext(
        path=path,
        effective=effective_parts(path, root),
        tree=tree,
        source=source,
        suppressions=_expand_suppressions(tree, suppressions),
        comment_lines=comment_lines,
    )


def _suppressed(ctx: FileContext, violation: Violation) -> bool:
    codes = ctx.suppressions.get(violation.line)
    if codes is None:
        return False
    return "*" in codes or violation.rule.upper() in codes


def _check_file(ctx: FileContext, rules: Sequence[Rule]) -> list[Violation]:
    """Run every applicable rule's per-file pass over one context."""
    found: list[Violation] = []
    for rule in rules:
        if not rule.applies_to(ctx):
            continue
        for violation in rule.check(ctx):
            if not _suppressed(ctx, violation):
                found.append(violation)
    return found


def lint_file(
    path: Path, root: Path, rules: Sequence[Rule]
) -> list[Violation]:
    """Run ``rules`` over one file as a complete lint run.

    Cross-file rules see a single-file universe: ``begin_run`` resets
    them and ``finalize`` reports whatever that one file accumulated.
    """
    ctx = parse_file(path, root)
    if ctx is None:
        return []
    for rule in rules:
        rule.begin_run()
    found = _check_file(ctx, rules)
    for rule in rules:
        found.extend(rule.finalize())
    found.sort(key=lambda v: (v.path, v.line, v.col, v.rule))
    return found


def iter_python_files(
    paths: Iterable[Path], include_fixtures: bool = False
) -> Iterator[Path]:
    """Yield ``.py`` files under ``paths`` (files pass through as-is).

    Implicit directory walks skip ``lint_fixtures`` directories — the
    seeded bad examples must not fail a whole-repo run — unless a
    fixture path was passed explicitly (``include_fixtures``).
    """
    for path in paths:
        if path.is_file():
            if path.suffix == ".py":
                yield path
            continue
        explicit_fixture = include_fixtures or _FIXTURE_DIR in path.parts
        for candidate in sorted(path.rglob("*.py")):
            parts = candidate.relative_to(path).parts
            if any(part in _SKIP_DIRS for part in parts):
                continue
            if not explicit_fixture and _FIXTURE_DIR in parts:
                continue
            yield candidate


def lint_paths(
    paths: Sequence[Path],
    root: Path | None = None,
    rules: Sequence[Rule] | None = None,
) -> list[Violation]:
    """Lint every Python file under ``paths``; the library entry point."""
    if rules is None:
        from repro.lint import ALL_RULES

        rules = ALL_RULES
    if root is None:
        root = Path.cwd()
    for rule in rules:
        rule.begin_run()
    found: list[Violation] = []
    for path in iter_python_files(paths):
        ctx = parse_file(path, root)
        if ctx is not None:
            found.extend(_check_file(ctx, rules))
    for rule in rules:
        found.extend(rule.finalize())
    found.sort(key=lambda v: (v.path, v.line, v.col, v.rule))
    return found
