"""RL6 — blocking calls inside ``async def`` bodies of the serving layer.

The server's contract is that the event loop never blocks: codec and
storage work runs in the worker thread pool, coroutines only frame bytes
and schedule.  One stray ``time.sleep`` or direct ``repro.api`` call
inside a coroutine stalls *every* connection at once — and nothing at
runtime flags it; the server just gets mysteriously slow under load.

This rule statically rejects, inside any ``async def`` under
``repro/server/``:

- ``time.sleep(...)`` (use ``await asyncio.sleep``),
- the ``open(...)`` builtin and ``socket.*`` calls (blocking I/O belongs
  in the worker pool or behind asyncio streams),
- direct :mod:`repro.api` codec/storage calls (``api.compress``,
  ``api.decompress``, ``api.read``, ``api.write``, ``api.open``,
  ``api.verify``, ``api.repair``) — including when imported as bare
  names via ``from repro.api import ...``.

Synchronous helpers nested inside a coroutine are not flagged: defining
a blocking function there is fine, it is *calling* one from the
coroutine body that stalls the loop.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.engine import FileContext, Rule, Violation

#: repro.api functions that do blocking codec/storage work.
_API_BLOCKING = frozenset(
    {"compress", "decompress", "read", "write", "open", "verify", "repair"}
)


def _api_aliases(tree: ast.Module) -> tuple[set[str], set[str]]:
    """Names bound to the repro.api module / its blocking functions."""
    module_aliases: set[str] = set()
    function_aliases: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "repro.api":
                    module_aliases.add(alias.asname or "repro")
        elif isinstance(node, ast.ImportFrom):
            if node.module == "repro":
                for alias in node.names:
                    if alias.name == "api":
                        module_aliases.add(alias.asname or "api")
            elif node.module == "repro.api":
                for alias in node.names:
                    if alias.name in _API_BLOCKING:
                        function_aliases.add(alias.asname or alias.name)
    return module_aliases, function_aliases


def _iter_coroutine_calls(
    coroutine: ast.AsyncFunctionDef,
) -> Iterator[ast.Call]:
    """Calls lexically inside the coroutine, not in nested sync defs."""
    stack: list[ast.AST] = list(ast.iter_child_nodes(coroutine))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.Lambda)):
            continue  # a nested sync def is not executed by the loop
        if isinstance(node, ast.Call):
            yield node
        stack.extend(ast.iter_child_nodes(node))


class AsyncBlockingRule(Rule):
    """RL6: blocking calls in coroutines under ``repro/server``."""

    code = "RL6"
    name = "async-blocking"
    description = (
        "blocking call (time.sleep / open / socket.* / repro.api codec "
        "work) inside an async def of repro/server or repro/shard; "
        "offload to the worker pool"
    )

    def applies_to(self, ctx: FileContext) -> bool:
        return len(ctx.effective) >= 2 and ctx.effective[:2] in (
            ("repro", "server"),
            ("repro", "shard"),
        )

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        module_aliases, function_aliases = _api_aliases(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.AsyncFunctionDef):
                continue
            for call in _iter_coroutine_calls(node):
                reason = self._blocking_reason(
                    call, module_aliases, function_aliases
                )
                if reason is not None:
                    yield self.violation(
                        ctx,
                        call,
                        f"{reason} inside async def "
                        f"{node.name!r} blocks the event loop; run it "
                        "in the worker thread pool",
                    )

    @staticmethod
    def _blocking_reason(
        call: ast.Call,
        module_aliases: set[str],
        function_aliases: set[str],
    ) -> str | None:
        func = call.func
        if isinstance(func, ast.Name):
            if func.id == "open":
                return "open()"
            if func.id in function_aliases:
                return f"repro.api {func.id}()"
            return None
        if isinstance(func, ast.Attribute) and isinstance(
            func.value, ast.Name
        ):
            owner, attr = func.value.id, func.attr
            if owner == "time" and attr == "sleep":
                return "time.sleep()"
            if owner == "socket":
                return f"socket.{attr}()"
            if owner in module_aliases and attr in _API_BLOCKING:
                return f"repro.api {attr}()"
        return None
