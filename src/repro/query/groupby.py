"""Vectorized GROUP BY aggregation over compressed columns.

Completes the engine's operator set with the aggregation pattern real
analytical queries use: group a value column by a key column, entirely
vector-at-a-time.  Per batch, keys and values decode together, the keys
are factorized (``np.unique``) and per-group partial aggregates are
accumulated with ``np.bincount`` / ``np.minimum.at`` — no per-row Python.

Keys are float64 like everything else in the engine (the paper's corpus
stores even discrete counts as doubles); grouping is by exact bit
pattern, so NaN keys group together and ±0.0 stay distinct.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.query.sources import ColumnSource


@dataclass
class GroupedAggregate:
    """Accumulates per-group sum / count / min / max across batches."""

    sums: dict[int, float] = field(default_factory=dict)
    counts: dict[int, int] = field(default_factory=dict)
    mins: dict[int, float] = field(default_factory=dict)
    maxs: dict[int, float] = field(default_factory=dict)

    def update(self, keys: np.ndarray, values: np.ndarray) -> None:
        """Fold one (keys, values) vector pair into the running groups."""
        if keys.size != values.size:
            raise ValueError("keys and values must align")
        if keys.size == 0:
            return
        key_bits = np.ascontiguousarray(keys, dtype=np.float64).view(
            np.uint64
        )
        unique, codes = np.unique(key_bits, return_inverse=True)
        group_sums = np.bincount(
            codes, weights=values, minlength=unique.size
        )
        group_counts = np.bincount(codes, minlength=unique.size)
        group_mins = np.full(unique.size, np.inf)
        np.minimum.at(group_mins, codes, values)
        group_maxs = np.full(unique.size, -np.inf)
        np.maximum.at(group_maxs, codes, values)

        for i, raw_key in enumerate(unique.tolist()):
            self.sums[raw_key] = self.sums.get(raw_key, 0.0) + group_sums[i]
            self.counts[raw_key] = (
                self.counts.get(raw_key, 0) + int(group_counts[i])
            )
            current_min = self.mins.get(raw_key, np.inf)
            self.mins[raw_key] = min(current_min, float(group_mins[i]))
            current_max = self.maxs.get(raw_key, -np.inf)
            self.maxs[raw_key] = max(current_max, float(group_maxs[i]))

    def result(self, kind: str = "sum") -> dict[float, float]:
        """Final {key: aggregate} mapping (keys back as floats)."""
        source = {
            "sum": self.sums,
            "count": self.counts,
            "min": self.mins,
            "max": self.maxs,
        }.get(kind)
        if source is None:
            raise ValueError(f"unknown aggregate {kind!r}")

        def to_float(raw_key: int) -> float:
            return float(
                np.array([raw_key], dtype=np.uint64).view(np.float64)[0]
            )

        return {to_float(raw_key): float(v) for raw_key, v in source.items()}

    @property
    def group_count(self) -> int:
        """Number of distinct keys seen."""
        return len(self.counts)


def group_by(
    keys: ColumnSource,
    values: ColumnSource,
    kind: str = "sum",
) -> dict[float, float]:
    """GROUP BY aggregation of two aligned compressed columns."""
    if keys.value_count != values.value_count:
        raise ValueError(
            f"column lengths differ: {keys.value_count} vs "
            f"{values.value_count}"
        )
    accumulator = GroupedAggregate()
    for key_vector, value_vector in zip(keys.vectors(), values.vectors(), strict=True):
        accumulator.update(key_vector, value_vector)
    return accumulator.result(kind)
