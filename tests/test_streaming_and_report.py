"""Tests for the streaming compressor and the analysis report."""


import numpy as np
import pytest

from repro.analysis.report import compressibility_report, diagnose_column
from repro.core.compressor import compress, decompress
from repro.core.streaming import StreamingCompressor, compress_stream
from repro.data import get_dataset


def bitwise_equal(a, b):
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    return a.shape == b.shape and np.array_equal(
        a.view(np.uint64), b.view(np.uint64)
    )


class TestStreamingCompressor:
    def test_matches_batch_compression(self):
        values = get_dataset("Stocks-USA", n=250_000)
        chunks = np.array_split(values, 17)
        column = compress_stream(iter(chunks))
        assert bitwise_equal(decompress(column), values)
        batch = compress(values)
        # Row-group boundaries are identical, so sizes match exactly.
        assert column.size_bits() == batch.size_bits()
        assert len(column.rowgroups) == len(batch.rowgroups)

    def test_emits_rowgroups_eagerly(self):
        emitted = []
        stream = StreamingCompressor(emitted.append)
        stream.write(np.round(np.random.default_rng(0).uniform(0, 9, 102_400), 1))
        assert len(emitted) == 1  # full row-group emitted before close
        stream.write(np.array([1.5]))
        stream.close()
        assert len(emitted) == 2
        assert emitted[1].count == 1

    def test_tiny_chunks(self):
        rng = np.random.default_rng(1)
        values = np.round(rng.uniform(0, 10, 3000), 2)
        column = compress_stream(iter(np.array_split(values, 500)))
        assert bitwise_equal(decompress(column), values)

    def test_empty_chunks_ignored(self):
        column = compress_stream(iter([np.empty(0), np.array([2.5]), np.empty(0)]))
        assert column.count == 1

    def test_write_after_close_rejected(self):
        stream = StreamingCompressor(lambda rg: None)
        stream.close()
        with pytest.raises(RuntimeError):
            stream.write(np.array([1.0]))

    def test_counters(self):
        stream_sink = []
        with StreamingCompressor(stream_sink.append) as stream:
            stream.write(np.round(np.random.default_rng(2).uniform(0, 9, 150_000), 1))
        assert stream.values_written == 150_000
        assert stream.rowgroups_emitted == 2

    def test_rd_data_streams(self):
        values = get_dataset("POI-lat", n=120_000)
        column = compress_stream(iter(np.array_split(values, 7)))
        assert column.stats.rd_rowgroups >= 1
        assert bitwise_equal(decompress(column), values)


class TestDiagnosis:
    def test_decimal_column_predicts_alp(self):
        values = get_dataset("City-Temp", n=8192)
        diagnosis = diagnose_column(values)
        assert diagnosis.predicted_scheme == "alp"
        assert diagnosis.decimal_origin
        assert diagnosis.estimated_bits_per_value < 48

    def test_real_doubles_predict_rd(self):
        values = get_dataset("POI-lat", n=8192)
        diagnosis = diagnose_column(values)
        assert diagnosis.predicted_scheme == "alprd"
        assert not diagnosis.decimal_origin

    def test_prediction_matches_compressor(self):
        for name in ("Stocks-USA", "POI-lon", "CMS/9"):
            values = get_dataset(name, n=8192)
            diagnosis = diagnose_column(values)
            column = compress(values)
            assert (
                column.rowgroups[0].scheme == diagnosis.predicted_scheme
            ), name

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            diagnose_column(np.empty(0))


class TestReport:
    def test_report_mentions_scheme(self):
        report = compressibility_report(
            get_dataset("City-Temp", n=8192), name="City-Temp"
        )
        assert "ALP (decimal encoding)" in report
        assert "candidate (e, f)" in report

    def test_report_rd_path(self):
        report = compressibility_report(get_dataset("POI-lat", n=8192))
        assert "real doubles" in report

    def test_report_duplication_hint(self):
        report = compressibility_report(get_dataset("PM10-dust", n=8192))
        assert "cascade" in report
