"""Integration tests for the public compress/decompress API."""

import math

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import compress, decompress


def bitwise_equal(a, b):
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    return a.shape == b.shape and np.array_equal(
        a.view(np.uint64), b.view(np.uint64)
    )


class TestRoundTrip:
    def test_decimal_column(self):
        rng = np.random.default_rng(0)
        values = np.round(rng.uniform(0, 500, 50_000), 2)
        column = compress(values)
        assert bitwise_equal(decompress(column), values)
        assert not column.uses_rd

    def test_poi_column_uses_rd(self):
        rng = np.random.default_rng(1)
        values = rng.uniform(-math.pi, math.pi, 50_000)
        column = compress(values)
        assert column.uses_rd
        assert bitwise_equal(decompress(column), values)

    def test_mixed_rowgroups(self):
        rng = np.random.default_rng(2)
        decimal_part = np.round(rng.uniform(0, 100, 102_400), 1)
        real_part = rng.uniform(0, 1, 102_400) * math.pi
        values = np.concatenate([decimal_part, real_part])
        column = compress(values)
        schemes = [rg.scheme for rg in column.rowgroups]
        assert "alp" in schemes and "alprd" in schemes
        assert bitwise_equal(decompress(column), values)

    def test_empty_column(self):
        column = compress(np.empty(0))
        assert decompress(column).size == 0
        assert column.bits_per_value() == 0.0

    def test_single_value(self):
        values = np.array([42.5])
        assert bitwise_equal(decompress(compress(values)), values)

    def test_non_multiple_of_vector_size(self):
        rng = np.random.default_rng(3)
        values = np.round(rng.uniform(0, 10, 1024 * 3 + 17), 2)
        assert bitwise_equal(decompress(compress(values)), values)

    def test_special_values_column(self):
        values = np.array(
            [math.nan, math.inf, -math.inf, -0.0, 0.0, 1.5, 5e-324] * 100
        )
        assert bitwise_equal(decompress(compress(values)), values)

    @given(
        st.lists(
            st.floats(allow_nan=True, allow_infinity=True, width=64),
            max_size=400,
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_arbitrary_doubles(self, xs):
        values = np.array(xs, dtype=np.float64)
        assert bitwise_equal(decompress(compress(values)), values)


class TestCompressionQuality:
    def test_two_decimal_data_compresses_hard(self):
        # Stocks-USA-like data: 2 decimals, tight range -> paper gets
        # ~8 bits/value; we should land well under 20.
        rng = np.random.default_rng(4)
        walk = np.cumsum(rng.normal(0, 0.05, 100_000)) + 150.0
        values = np.round(walk, 2)
        column = compress(values)
        assert column.bits_per_value() < 20

    def test_integers_as_doubles_compress(self):
        # CMS/9-like: discrete counts stored as doubles.
        rng = np.random.default_rng(5)
        values = rng.poisson(100, 50_000).astype(np.float64)
        column = compress(values)
        assert column.bits_per_value() < 16

    def test_constant_column_is_tiny(self):
        values = np.full(102_400, 3.14)
        column = compress(values)
        assert column.bits_per_value() < 1.0

    def test_rd_data_stays_below_64_bits(self):
        rng = np.random.default_rng(6)
        values = rng.uniform(0.1, 1.0, 102_400) * math.pi
        column = compress(values)
        assert column.bits_per_value() < 64

    def test_compression_ratio_property(self):
        values = np.full(2048, 7.25)
        column = compress(values)
        assert column.compression_ratio() > 32


class TestSchemeForcing:
    def test_force_alprd_on_decimal_data(self):
        rng = np.random.default_rng(7)
        values = np.round(rng.uniform(0, 10, 4096), 1)
        column = compress(values, force_scheme="alprd")
        assert all(rg.scheme == "alprd" for rg in column.rowgroups)
        assert bitwise_equal(decompress(column), values)

    def test_force_alp_on_real_doubles(self):
        rng = np.random.default_rng(8)
        values = rng.uniform(0, 1, 4096) * math.pi
        column = compress(values, force_scheme="alp")
        assert all(rg.scheme == "alp" for rg in column.rowgroups)
        assert bitwise_equal(decompress(column), values)


class TestStats:
    def test_single_candidate_skips_second_level(self):
        rng = np.random.default_rng(9)
        values = np.round(rng.uniform(0, 100, 1024 * 20), 1)
        column = compress(values)
        stats = column.stats
        # Uniform precision -> k' == 1 -> every vector skipped level two.
        assert stats.second_level_skipped == stats.vectors_encoded

    def test_tried_histogram(self):
        rng = np.random.default_rng(10)
        parts = [np.round(rng.uniform(0, 100, 1024), p) for p in (1, 5)] * 10
        column = compress(np.concatenate(parts))
        hist = column.stats.tried_histogram()
        assert all(k >= 1 for k in hist)

    def test_rowgroup_counts(self):
        rng = np.random.default_rng(11)
        values = np.round(rng.uniform(0, 100, 1024 * 100 + 5), 1)
        column = compress(values)
        stats = column.stats
        assert stats.alp_rowgroups + stats.rd_rowgroups == len(
            column.rowgroups
        )
