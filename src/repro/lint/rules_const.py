"""RL4 — format constants must come from ``repro.core.constants``.

The on-disk format is defined by a handful of numbers: the vector size
(1024), the row-group size (102 400) and the 64-bit mask.  Inlining
those as literals is how a format change half-lands: one module updates,
another keeps the old number, and payloads stop round-tripping between
them.  RL4 flags the known format literals anywhere in the format-
bearing packages and points at the canonical constant to import.

``core/constants.py`` itself is exempt (it *defines* them), as is any
literal used as a ``maxsize=`` keyword (cache sizing is not format).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.engine import FileContext, Rule, Violation

#: Literal value -> canonical name in repro.core.constants.
_MAGIC: dict[int, str] = {
    1024: "VECTOR_SIZE",
    102400: "ROWGROUP_SIZE",
    0xFFFFFFFFFFFFFFFF: "U64_MASK",
}

#: Keyword arguments whose integer values are configuration, not format.
_EXEMPT_KWARGS = {"maxsize"}

#: Second-level packages where format literals are format bugs.
_SCOPED_PACKAGES = {
    "core",
    "encodings",
    "storage",
    "baselines",
    "bench",
    "alputil",
    "query",
}


class FormatConstantRule(Rule):
    """RL4: inline format literals instead of ``core/constants`` names."""

    code = "RL4"
    name = "format-constant"
    description = (
        "magic numbers for the vector size, row-group size or 64-bit "
        "mask; import the constant from repro.core.constants"
    )

    def applies_to(self, ctx: FileContext) -> bool:
        parts = ctx.effective
        if not parts:
            return False
        if parts[0] == "benchmarks":
            return True
        return (
            parts[0] == "repro"
            and len(parts) >= 2
            and parts[1] in _SCOPED_PACKAGES
            and ctx.basename != "constants.py"
        )

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        exempt = _exempt_constants(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not (
                isinstance(node, ast.Constant)
                and type(node.value) is int
                and node.value in _MAGIC
            ):
                continue
            if id(node) in exempt:
                continue
            name = _MAGIC[node.value]
            yield self.violation(
                ctx,
                node,
                f"magic format literal {node.value}; use "
                f"repro.core.constants.{name}",
            )


def _exempt_constants(tree: ast.Module) -> set[int]:
    """ids of Constant nodes sitting under an exempt keyword argument."""
    exempt: set[int] = set()
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        for keyword in node.keywords:
            if keyword.arg in _EXEMPT_KWARGS:
                for child in ast.walk(keyword.value):
                    exempt.add(id(child))
    return exempt
