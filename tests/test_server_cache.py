"""DecodedVectorCache: LRU/byte-budget semantics and engine integration."""

from __future__ import annotations

import threading

import numpy as np

from repro import api, obs
from repro.query.sources import FileColumnSource
from repro.server.cache import DecodedVectorCache


def _values(n, fill):
    return np.full(n, float(fill), dtype=np.float64)


class TestBasics:
    def test_miss_then_hit(self):
        cache = DecodedVectorCache(byte_budget=1 << 20)
        assert cache.get("k") is None
        cache.put("k", _values(10, 1))
        got = cache.get("k")
        assert got is not None and got[0] == 1.0
        stats = cache.stats()
        assert (stats.hits, stats.misses) == (1, 1)
        assert stats.hit_rate == 0.5

    def test_get_or_load_runs_loader_once_cached(self):
        cache = DecodedVectorCache(byte_budget=1 << 20)
        calls = []

        def loader():
            calls.append(1)
            return _values(8, 2)

        first = cache.get_or_load("k", loader)
        second = cache.get_or_load("k", loader)
        assert len(calls) == 1
        assert first is second

    def test_entries_are_read_only(self):
        cache = DecodedVectorCache(byte_budget=1 << 20)
        resident = cache.put("k", _values(4, 3))
        assert not resident.flags.writeable

    def test_loader_exception_propagates_uncached(self):
        cache = DecodedVectorCache(byte_budget=1 << 20)

        def boom():
            raise RuntimeError("corrupt")

        try:
            cache.get_or_load("k", boom)
        except RuntimeError:
            pass
        assert cache.stats().entries == 0

    def test_invalidate_and_clear(self):
        cache = DecodedVectorCache(byte_budget=1 << 20)
        cache.put("a", _values(4, 1))
        cache.put("b", _values(4, 2))
        assert cache.invalidate("a")
        assert not cache.invalidate("a")
        cache.clear()
        assert cache.stats().entries == 0
        assert cache.stats().bytes_used == 0


class TestBudget:
    def test_lru_eviction_order(self):
        # Budget fits exactly two 80-byte entries; touching "a" makes
        # "b" the LRU victim when "c" arrives.
        cache = DecodedVectorCache(byte_budget=160)
        cache.put("a", _values(10, 1))
        cache.put("b", _values(10, 2))
        assert cache.get("a") is not None
        cache.put("c", _values(10, 3))
        assert cache.get("b") is None
        assert cache.get("a") is not None
        assert cache.get("c") is not None
        assert cache.stats().evictions == 1

    def test_bytes_never_exceed_budget(self):
        cache = DecodedVectorCache(byte_budget=200)
        for i in range(20):
            cache.put(i, _values(8, i))
            assert cache.stats().bytes_used <= 200

    def test_oversized_value_returned_uncached(self):
        cache = DecodedVectorCache(byte_budget=32)
        out = cache.put("big", _values(100, 1))
        assert out.size == 100
        assert cache.stats().entries == 0

    def test_duplicate_put_keeps_resident_entry(self):
        cache = DecodedVectorCache(byte_budget=1 << 20)
        first = cache.put("k", _values(4, 1))
        second = cache.put("k", _values(4, 2))
        assert second is first  # first insert wins
        assert cache.stats().bytes_used == first.nbytes


class TestConcurrency:
    def test_parallel_get_or_load_converges(self):
        cache = DecodedVectorCache(byte_budget=1 << 20)
        results = []
        barrier = threading.Barrier(8)

        def work(i):
            barrier.wait()
            out = cache.get_or_load(
                "shared", lambda: _values(1024, 7)
            )
            results.append(out)

        threads = [
            threading.Thread(target=work, args=(i,)) for i in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(results) == 8
        resident = cache.get("shared")
        assert all(r is resident or np.array_equal(r, resident) for r in results)
        assert cache.stats().entries == 1


class TestEngineIntegration:
    def test_file_source_uses_cache(self, tmp_path):
        values = np.round(
            np.random.default_rng(0).normal(5, 2, 20_000), 2
        )
        path = tmp_path / "c.alpc"
        api.write(
            path,
            values,
            api.CompressionOptions(vector_size=256, rowgroup_vectors=4),
        )
        cache = DecodedVectorCache(byte_budget=64 << 20)
        source = FileColumnSource.open(path, cache=cache)
        first = np.concatenate(list(source.vectors()))
        cold = cache.stats()
        assert cold.misses > 0 and cold.hits == 0
        second = np.concatenate(list(source.vectors()))
        warm = cache.stats()
        assert warm.misses == cold.misses  # fully served from cache
        assert warm.hits == cold.misses
        assert np.array_equal(
            first.view(np.uint64), second.view(np.uint64)
        )
        assert np.array_equal(
            first.view(np.uint64), values.view(np.uint64)
        )

    def test_obs_counters_mirrored(self):
        obs.enable()
        obs.reset()
        try:
            cache = DecodedVectorCache(byte_budget=1 << 20)
            cache.get("k")
            cache.put("k", _values(4, 1))
            cache.get("k")
            snap = obs.snapshot()
            assert snap["counters"]["cache.misses"] == 1
            assert snap["counters"]["cache.hits"] == 1
            assert snap["gauges"]["cache.bytes"] == 32
        finally:
            obs.disable()
            obs.reset()
