"""Vectorized bit-packing (the FastLanes "BP" primitive).

Packs arrays of unsigned integers into a dense byte buffer using a fixed
bit width per vector, and unpacks them back.  This is the workhorse under
FFOR, the skewed dictionary of ALP_rd, and the PDE baseline.

The layout is MSB-first within the buffer (value ``i`` occupies bits
``[i*w, (i+1)*w)`` of the stream).  The FastLanes C++ library uses an
interleaved transposed layout for SIMD friendliness; in numpy the plain
sequential layout vectorizes equally well and keeps the format readable,
so we use it and note the deviation here.

Both directions are *word-parallel*: the packer computes, per value, the
one or two 64-bit destination words its field straddles and combines the
shifted contributions with an OR-reduction (three to five numpy kernels
total, independent of width); the unpacker is the mirrored two-word
gather.  Byte-aligned widths short-circuit to a single dtype cast.  All
index arithmetic depends only on ``(width, count)`` and is cached, so
the steady-state cost per 1024-value ALP vector is a handful of numpy
calls on 1024-element arrays — no N x width bit matrix is ever built.
The original bit-matrix packer survives as :func:`pack_bits_bitmatrix`,
the reference the equivalence tests and kernel benchmarks compare
against.
"""

from __future__ import annotations

import sys
from functools import lru_cache

import numpy as np

from repro import obs

if sys.version_info >= (3, 12):  # pragma: no cover - version switch
    from collections.abc import Buffer
else:  # pragma: no cover - version switch
    from typing import Union

    #: Pre-3.12 stand-in for :class:`collections.abc.Buffer`: the
    #: buffer-protocol inputs the unpack kernels accept at runtime.
    Buffer = Union[bytes, bytearray, memoryview, np.ndarray]

#: Widths packable with a single dtype cast (big-endian field bytes are
#: exactly the value's low bytes in stream order).
_CAST_DTYPES = {8: np.dtype(np.uint8), 16: ">u2", 32: ">u4", 64: ">u8"}


def as_byte_buffer(buffer: Buffer) -> bytes | bytearray | memoryview:
    """A flat byte view of any C-contiguous buffer, without copying.

    ``bytes``/``bytearray`` pass through; other buffer-protocol objects
    (``memoryview`` slices of an mmap, numpy byte arrays) are wrapped in
    a ``memoryview`` and cast to unsigned bytes.  Non-contiguous views
    have no zero-copy byte representation and are rejected with a clear
    error rather than silently copied.
    """
    if isinstance(buffer, (bytes, bytearray)):
        return buffer
    view = buffer if isinstance(buffer, memoryview) else memoryview(buffer)
    if not view.c_contiguous:
        raise ValueError(
            "expected a C-contiguous buffer; got a non-contiguous "
            "memoryview (materialize it with bytes(...) or "
            "np.ascontiguousarray first)"
        )
    return view.cast("B")


def _coerce_out(out: np.ndarray, count: int) -> np.ndarray:
    """Validate a caller-provided unpack destination buffer."""
    if not isinstance(out, np.ndarray):
        raise TypeError(f"out must be a numpy ndarray, got {type(out)!r}")
    if out.dtype != np.uint64:
        raise ValueError(f"out must have dtype uint64, got {out.dtype}")
    if out.ndim != 1 or out.size != count:
        raise ValueError(
            f"out must be a 1-D array of exactly {count} values, "
            f"got shape {out.shape}"
        )
    if not out.flags.c_contiguous or not out.flags.writeable:
        raise ValueError("out must be C-contiguous and writable")
    return out


def bit_width_required(
    values: np.ndarray, known_min: int | None = None
) -> int:
    """Smallest bit width able to represent every value in ``values``.

    Values must be non-negative (unsigned).  An empty or all-zero array
    needs 0 bits — FFOR exploits this for constant vectors.

    Signed-dtype inputs are accepted but validated on their *minimum*:
    checking ``values.max() < 0`` would only reject all-negative arrays
    (and can never fire for unsigned dtypes), silently mis-sizing mixed
    arrays like ``[-1, 5]``.  Callers that already reduced the minimum
    (FOR-style encoders subtract it as the frame of reference) pass it
    via ``known_min`` so the validation does not re-scan the array.
    """
    values = np.asarray(values)
    if values.size == 0:
        return 0
    if values.dtype.kind != "u":
        minimum = int(values.min()) if known_min is None else known_min
        if minimum < 0:
            raise ValueError("bit_width_required expects non-negative values")
    return int(values.max()).bit_length()


@lru_cache(maxsize=1024)
def _pack_plan(
    width: int, count: int
) -> tuple[int, int, np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Precomputed scatter geometry for ``count`` fields of ``width`` bits.

    Everything here depends only on (width, count), so the hot path pays
    for it once per shape.  Returns ``(n_words, n_start_words, offset,
    boundaries, straddle, s_idx, s_shift)`` where

    - ``offset[i]`` is field ``i``'s start bit inside its first word,
    - ``boundaries[w]`` is the first field starting in word ``w`` (every
      word up to the last field's start word holds at least one start,
      because ``width <= 64`` means consecutive starts are never more
      than 64 bits apart — so the OR-reduction segments are non-empty),
    - ``straddle`` marks fields crossing into the next word; at most one
      field crosses any given word boundary (fields are disjoint), so
      the spill writes at ``s_idx`` are conflict-free fancy indexing.
    """
    n_words = (count * width + 63) // 64
    starts = np.arange(count, dtype=np.uint64) * np.uint64(width)
    word_idx = (starts >> np.uint64(6)).view(np.int64)
    offset = starts & np.uint64(63)
    # A trailing word reached only by the last field's spill contains no
    # start; the OR-reduction covers words up to the last start only.
    n_start_words = int(word_idx[-1]) + 1
    boundaries = (
        np.arange(n_start_words, dtype=np.int64) * 64 + width - 1
    ) // width
    straddle = (offset + np.uint64(width)) > np.uint64(64)
    s_idx = word_idx[straddle] + 1
    s_shift = (np.uint64(64) - offset[straddle]) & np.uint64(63)
    return n_words, n_start_words, offset, boundaries, straddle, s_idx, s_shift


def pack_bits(
    values: np.ndarray, width: int, max_value: int | None = None
) -> bytes:
    """Pack ``values`` (non-negative, each < 2**width) into bytes.

    ``max_value`` lets callers that already reduced the maximum (every
    width computation does) skip the validation re-scan.

    >>> unpack_bits(pack_bits(np.array([1, 2, 3], dtype=np.uint64), 2), 2, 3)
    array([1, 2, 3], dtype=uint64)
    """
    if width < 0 or width > 64:
        raise ValueError(f"bit width must be in [0, 64], got {width}")
    values = np.ascontiguousarray(values, dtype=np.uint64)
    if values.size:
        vmax = int(values.max()) if max_value is None else max_value
        if width == 0:
            if vmax != 0:
                raise ValueError("width 0 requires an all-zero array")
            packed = b""
        elif vmax >> width:
            raise ValueError(f"value {vmax} does not fit in {width} bits")
        else:
            packed = _pack_words(values, width)
    else:
        packed = b""
    if obs.ENABLED:
        obs.metrics.counter_add("bitpack.pack_calls", 1)
        obs.metrics.counter_add("bitpack.pack_values", int(values.size))
        obs.metrics.counter_add("bitpack.pack_bytes", len(packed))
    return packed


def _pack_words(values: np.ndarray, width: int) -> bytes:
    """Word-parallel packing core (validated inputs, width in 1..64)."""
    cast = _CAST_DTYPES.get(width)
    if cast is not None:
        # Byte-exact fast path: the field bytes *are* the value's low
        # bytes in big-endian order, so one dtype cast emits the stream.
        return values.astype(cast).tobytes()
    count = values.size
    nbytes = (count * width + 7) // 8
    if width % 8 == 0:
        # Remaining byte-aligned widths (24/40/48/56): slice the low
        # ``width // 8`` byte columns out of the big-endian value bytes.
        k = width // 8
        return (
            values.astype(">u8").view(np.uint8).reshape(-1, 8)[:, 8 - k :]
        ).tobytes()
    (
        n_words,
        n_start_words,
        offset,
        boundaries,
        straddle,
        s_idx,
        s_shift,
    ) = _pack_plan(width, count)
    # Left-align each field in its own 64-bit window, shift it down to
    # its in-word position, and OR together every field starting in the
    # same word.  Fields crossing a word boundary contribute their low
    # bits to the next word in a second, conflict-free pass.
    field = values << np.uint64(64 - width)
    hi = field >> offset
    words = np.zeros(n_words, dtype=np.uint64)
    np.bitwise_or.reduceat(hi, boundaries, out=words[:n_start_words])
    if s_idx.size:
        words[s_idx] |= field[straddle] << s_shift
    return words.astype(">u8").tobytes()[:nbytes]


def pack_bits_bitmatrix(values: np.ndarray, width: int) -> bytes:
    """Reference packer: expand to an N x width bit matrix, ``packbits``.

    This is the pre-word-parallel implementation, kept as the ground
    truth for the equivalence tests and as the "before" side of the
    kernel micro-benchmarks (``alp-repro bench --kernels``).  It is
    O(N x width) in both memory traffic and work; do not call it on a
    hot path.
    """
    if width < 0 or width > 64:
        raise ValueError(f"bit width must be in [0, 64], got {width}")
    values = np.ascontiguousarray(values, dtype=np.uint64)
    if width == 0:
        if values.size and int(values.max()) != 0:
            raise ValueError("width 0 requires an all-zero array")
        return b""
    if values.size and int(values.max()) >> width:
        raise ValueError(
            f"value {int(values.max())} does not fit in {width} bits"
        )
    shifts = np.arange(width - 1, -1, -1, dtype=np.uint64)
    bits = ((values[:, None] >> shifts[None, :]) & np.uint64(1)).astype(np.uint8)
    return np.packbits(bits.ravel()).tobytes()


@lru_cache(maxsize=1024)
def _unpack_plan(
    width: int, count: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Cached gather geometry: (word index, in-word offset, spill shift)."""
    starts = np.arange(count, dtype=np.uint64) * np.uint64(width)
    word_idx = (starts >> np.uint64(6)).view(np.int64)
    offset = starts & np.uint64(63)
    # A shift by 64 is undefined; mask the no-spill lanes to zero instead.
    spill_shift = (np.uint64(64) - offset) & np.uint64(63)
    return word_idx, offset, spill_shift


def unpack_bits(
    buffer: Buffer, width: int, count: int, out: np.ndarray | None = None
) -> np.ndarray:
    """Unpack ``count`` values of ``width`` bits each from ``buffer``.

    ``buffer`` may be any C-contiguous buffer-protocol object —
    ``bytes``, ``bytearray``, a ``memoryview`` slice of an mmap, or a
    numpy byte array — and is never copied whole (non-contiguous views
    are rejected, see :func:`as_byte_buffer`).  ``out``, when given,
    must be a writable C-contiguous uint64 array of exactly ``count``
    values and receives the fields in place, so batch decoders can
    unpack straight into a caller-provided column buffer.

    The generic path pads the payload to whole 64-bit words (plus one
    spill word), views it as big-endian uint64, and reconstructs each
    field from the one or two words it straddles — two gathers plus
    shifts for *every* width, the numpy analogue of FastLanes'
    branch-free unpack kernels.  Byte-aligned widths (8/16/32/64) skip
    the word gather entirely: the stream is reinterpreted with a single
    big-endian dtype cast.  The gather geometry depends only on
    ``(width, count)`` and is cached across calls.
    """
    if width < 0 or width > 64:
        raise ValueError(f"bit width must be in [0, 64], got {width}")
    if count < 0:
        raise ValueError("count must be non-negative")
    if out is not None:
        out = _coerce_out(out, count)
    if width == 0:
        if out is not None:
            out[...] = 0
            return out
        return np.zeros(count, dtype=np.uint64)
    buffer = as_byte_buffer(buffer)
    total_bits = count * width
    available = len(buffer) * 8
    if total_bits > available:
        raise ValueError(
            f"buffer holds {available} bits, need {total_bits} "
            f"for {count} values of width {width}"
        )
    if count == 0:
        return out if out is not None else np.zeros(0, dtype=np.uint64)
    if obs.ENABLED:
        obs.metrics.counter_add("bitpack.unpack_calls", 1)
        obs.metrics.counter_add("bitpack.unpack_values", count)
        obs.metrics.counter_add("bitpack.unpack_bytes", len(buffer))
    cast = _CAST_DTYPES.get(width)
    if cast is not None:
        fields = np.frombuffer(buffer, dtype=cast, count=count)
        if out is not None:
            out[...] = fields  # widening big-endian cast, in place
            return out
        return fields.astype(np.uint64)
    nbytes = (total_bits + 7) // 8
    padded_len = ((nbytes + 7) // 8 + 1) * 8
    padded = np.zeros(padded_len, dtype=np.uint8)
    padded[:nbytes] = np.frombuffer(buffer, dtype=np.uint8, count=nbytes)
    words = padded.view(">u8").astype(np.uint64)
    word_idx, offset, spill_shift = _unpack_plan(width, count)
    hi = words[word_idx] << offset
    lo = np.where(
        offset == 0,
        np.uint64(0),
        words[word_idx + 1] >> spill_shift,
    )
    hi |= lo
    if out is not None:
        return np.right_shift(hi, np.uint64(64 - width), out=out)
    return hi >> np.uint64(64 - width)


@lru_cache(maxsize=1024)
def _sum_plan_loop(width: int, count: int) -> tuple[int, int, int]:
    """Stride, repeating field mask and modulus for the packed-sum fold.

    Picks the smallest stride ``k`` such that the sum of *all* fields
    fits strictly below the modulus ``2**(k*width) - 1`` (at most ~12
    for ALP's 1024-value vectors), and builds the periodic mask that
    isolates one stride class: ``width`` one-bits every ``k*width``
    bits, long enough to cover the whole stream.  The total-sum bound
    (rather than a per-class one) is what lets :func:`unpack_sum` add
    the aligned classes together and reduce once.  Pure arithmetic on
    ``(width, count)``, cached; the ``while`` loops here run a handful
    of iterations on integers, never over data.
    """
    k = 2
    field_max = (1 << width) - 1
    while count * field_max >= (1 << (k * width)) - 1:
        k += 1
    period = k * width
    total_bits = count * width
    mask = field_max
    covered = period
    while covered < total_bits:
        mask |= mask << covered
        covered *= 2
    return k, mask, (1 << period) - 1


def _packed_stream(buffer: Buffer, width: int, count: int) -> int:
    """The packed payload as one big-endian integer, padding stripped.

    Field ``i`` (stream order) sits at bit offset ``(count-1-i)*width``
    from the least-significant end — the exact mirror of the MSB-first
    layout :func:`pack_bits` writes.
    """
    total_bits = count * width
    available = len(buffer) * 8
    if total_bits > available:
        raise ValueError(
            f"buffer holds {available} bits, need {total_bits} "
            f"for {count} values of width {width}"
        )
    return int.from_bytes(buffer, "big") >> (available - total_bits)


def _extract_fields_loop(
    buffer: Buffer, width: int, positions: list[int]
) -> int:
    """Sum of individual fields plucked straight out of the raw bytes.

    A pinned scalar loop by design: it runs over *exception positions*
    (a handful per vector), not over the data, and each pluck touches
    only the <= 9 bytes the field straddles — O(1) per position, far
    cheaper than gathering the whole vector when the excluded set is
    sparse.
    """
    field_mask = (1 << width) - 1
    total = 0
    for position in positions:
        start_bit = position * width
        end_bit = start_bit + width
        first = start_bit >> 3
        last = (end_bit + 7) >> 3
        chunk = int.from_bytes(buffer[first:last], "big")
        total += (chunk >> ((last << 3) - end_bit)) & field_mask
    return total


def unpack_sum(buffer: Buffer, width: int, count: int) -> int:
    """Exact integer sum of ``count`` packed ``width``-bit fields.

    The late-materialization kernel under encoded-domain SUM — and the
    one place the packed stream is *not* unpacked at all.  The payload
    is read as a single arbitrary-precision integer and folded modulo
    ``2**(k*width) - 1``: because ``2**(k*width) ≡ 1`` under that
    modulus, every field whose bit offset is a multiple of ``k*width``
    contributes its value directly to the residue.  The ``k`` stride
    classes are aligned by shifting, masked, and *added together* before
    a single reduction — safe, because each mask block is followed by a
    ``(k-1)*width``-bit zero gap and ``k`` is chosen so even the total
    sum stays below the modulus, so block sums can never carry into a
    neighbouring block.  The whole kernel is ``k`` shift+mask passes,
    one add chain and one ``%`` over the raw bytes — no per-value
    gather, no uint64 column, no float conversion.

    The fold walks the full bit stream, so its cost grows with
    ``count * width`` while the word-gather of :func:`unpack_bits` is
    O(count) regardless of width — past :data:`_FOLD_MAX_WIDTH` (and
    for the byte-aligned widths, whose gather is a single dtype cast)
    the kernel switches to gather + a bounded uint64 reduction.
    """
    if width < 0 or width > 64:
        raise ValueError(f"bit width must be in [0, 64], got {width}")
    if count < 0:
        raise ValueError("count must be non-negative")
    if obs.ENABLED:
        obs.metrics.counter_add("bitpack.unpack_sum_calls", 1)
    if width == 0 or count == 0:
        return 0
    buffer = as_byte_buffer(buffer)
    if width > _FOLD_MAX_WIDTH or width in _CAST_DTYPES:
        return uint64_sum_bounded(unpack_bits(buffer, width, count), width)
    stream = _packed_stream(buffer, width, count)
    return _fold_packed_sum(stream, width, count)


def _fold_packed_sum(stream: int, width: int, count: int) -> int:
    """The modular fold of :func:`unpack_sum` on an already-built stream."""
    stride, mask, modulus = _sum_plan_loop(width, count)
    folded = stream & mask
    for shift in range(1, stride):
        folded += (stream >> (shift * width)) & mask
    return folded % modulus


#: Widest field the modular fold beats the word gather for.  The fold's
#: cost is proportional to total stream bits, the gather's to the value
#: count alone, and the crossover sits just under two bytes per field.
_FOLD_MAX_WIDTH = 15

#: Above this many excluded positions the per-position byte pluck of
#: :func:`unpack_sum_excluding` loses to one vectorized gather.
_EXCLUDE_PLUCK_LIMIT = 48


def unpack_sum_excluding(
    buffer: Buffer, width: int, count: int, positions: np.ndarray
) -> int:
    """Exact sum of the packed fields with ``positions`` omitted.

    The sparse-correction shape of encoded-domain SUM: ALP exception
    slots hold placeholder payloads, so their fields must not reach the
    total.  For a sparse excluded set the fold of :func:`unpack_sum`
    runs unchanged and the few excluded fields are plucked straight out
    of the payload bytes; in the gather regime (wide fields, or more
    than :data:`_EXCLUDE_PLUCK_LIMIT` positions) the vector is gathered
    *once* and both the total and the excluded slots reduce from the
    same uint64 array.
    """
    if positions.size == 0:
        return unpack_sum(buffer, width, count)
    if width == 0 or count == 0:
        return 0
    buffer = as_byte_buffer(buffer)
    folds = width <= _FOLD_MAX_WIDTH and width not in _CAST_DTYPES
    if folds and int(positions.size) <= _EXCLUDE_PLUCK_LIMIT:
        return unpack_sum(buffer, width, count) - _extract_fields_loop(
            buffer, width, positions.tolist()
        )
    if obs.ENABLED:
        obs.metrics.counter_add("bitpack.unpack_sum_calls", 1)
    fields = unpack_bits(buffer, width, count)
    total = uint64_sum_bounded(fields, width)
    excluded = uint64_sum_bounded(
        fields[positions.astype(np.int64)], width
    )
    return total - excluded


def unpack_sum_reference(buffer: Buffer, width: int, count: int) -> int:
    """Scalar oracle for :func:`unpack_sum` (bit-identical, per value)."""
    fields = unpack_bits(buffer, width, count)
    total = 0
    for value in fields.tolist():
        total += value
    return total


def exact_uint64_sum(values: np.ndarray) -> int:
    """Exact sum of a uint64 array as a Python int (no wraparound).

    Splits each value into 32-bit halves; each half's partial sum fits a
    uint64 for any array shorter than 2**32 values, so two vectorized
    reductions plus one Python-int recombination give the exact total.
    """
    if values.size == 0:
        return 0
    if values.size >= 1 << 32:
        raise ValueError("exact_uint64_sum supports < 2**32 values")
    lo = int((values & np.uint64(0xFFFFFFFF)).sum(dtype=np.uint64))
    hi = int((values >> np.uint64(32)).sum(dtype=np.uint64))
    return (hi << 32) + lo


def uint64_sum_bounded(values: np.ndarray, width: int) -> int:
    """Exact sum of uint64 values known to be ``< 2**width`` each.

    When ``width + ceil(log2(n))`` fits in 64 bits the total cannot
    wrap, so a single vectorized uint64 reduction is exact — one pass
    instead of the split-sum's two.  Wider values fall back to
    :func:`exact_uint64_sum`.
    """
    if values.size == 0:
        return 0
    if width + int(values.size).bit_length() <= 64:
        return int(values.sum(dtype=np.uint64))
    return exact_uint64_sum(values)


def packed_size_bytes(count: int, width: int) -> int:
    """Byte size of ``count`` packed values of ``width`` bits."""
    return (count * width + 7) // 8
