"""Tests for vectorized GROUP BY over compressed columns."""

import math

import numpy as np
import pytest

from repro.query.groupby import GroupedAggregate, group_by
from repro.query.sources import make_source


@pytest.fixture(scope="module")
def sales():
    rng = np.random.default_rng(0)
    n = 50_000
    region = rng.integers(0, 12, n).astype(np.float64)
    amount = np.round(rng.lognormal(3.0, 1.0, n), 2)
    return region, amount


def reference_groupby(keys, values, kind):
    out = {}
    for k in np.unique(keys):
        selected = values[keys == k]
        out[float(k)] = {
            "sum": float(selected.sum()),
            "count": float(selected.size),
            "min": float(selected.min()),
            "max": float(selected.max()),
        }[kind]
    return out


class TestGroupedAggregate:
    def test_single_batch(self):
        acc = GroupedAggregate()
        acc.update(np.array([1.0, 2.0, 1.0]), np.array([10.0, 20.0, 30.0]))
        assert acc.result("sum") == {1.0: 40.0, 2.0: 20.0}
        assert acc.result("count") == {1.0: 2.0, 2.0: 1.0}
        assert acc.result("min") == {1.0: 10.0, 2.0: 20.0}
        assert acc.result("max") == {1.0: 30.0, 2.0: 20.0}

    def test_accumulates_across_batches(self):
        acc = GroupedAggregate()
        acc.update(np.array([5.0]), np.array([1.0]))
        acc.update(np.array([5.0]), np.array([2.0]))
        assert acc.result("sum") == {5.0: 3.0}
        assert acc.group_count == 1

    def test_misaligned_rejected(self):
        with pytest.raises(ValueError):
            GroupedAggregate().update(np.zeros(3), np.zeros(4))

    def test_empty_update_is_noop(self):
        acc = GroupedAggregate()
        acc.update(np.empty(0), np.empty(0))
        assert acc.group_count == 0

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            GroupedAggregate().result("median")

    def test_nan_keys_group_together(self):
        acc = GroupedAggregate()
        acc.update(np.array([math.nan, math.nan]), np.array([1.0, 2.0]))
        assert acc.group_count == 1
        (total,) = acc.result("sum").values()
        assert total == 3.0

    def test_signed_zero_keys_distinct(self):
        acc = GroupedAggregate()
        acc.update(np.array([0.0, -0.0]), np.array([1.0, 2.0]))
        assert acc.group_count == 2


class TestGroupByOverCompressed:
    @pytest.mark.parametrize("kind", ["sum", "count", "min", "max"])
    def test_matches_reference(self, sales, kind):
        region, amount = sales
        got = group_by(
            make_source("alp", region), make_source("alp", amount), kind
        )
        expected = reference_groupby(region, amount, kind)
        assert set(got) == set(expected)
        for key, value in expected.items():
            assert got[key] == pytest.approx(value, rel=1e-9), key

    def test_mixed_codecs(self, sales):
        region, amount = sales
        got = group_by(
            make_source("pde", region), make_source("alp", amount), "count"
        )
        assert sum(got.values()) == region.size

    def test_length_mismatch_rejected(self, sales):
        region, amount = sales
        with pytest.raises(ValueError):
            group_by(
                make_source("alp", region[:100]),
                make_source("alp", amount),
            )
