"""The router's backend pool: connection reuse, ejection, re-admission.

One pool serves every scatter worker.  It keeps a free-list of idle
:class:`~repro.server.client.ServerClient` connections per backend
(checkout / checkin / discard), and tracks backend health:

- ``failure_threshold`` consecutive connection-level failures **eject**
  the backend for an exponentially growing, jittered cool-down
  (``shard.backend_ejected``) — scatter stops trying it, so a dead
  backend costs one connect timeout per cool-down, not one per request;
- when the cool-down expires the backend is **on probation**: eligible
  again, and the first success clears the failure history
  (``shard.backend_readmitted``) while another failure re-ejects it with
  a doubled cool-down;
- protocol-level errors (``bad_request``, ``not_found``…) are *not*
  failures — only unreachability counts against health.

Locking: the single pool lock guards only dict/list state.  Connects —
the blocking part — happen strictly outside it (the runtime lock-order
sanitizer would flag blocking-while-holding, and it would serialize the
scatter fan-out).
"""

from __future__ import annotations

import random
import time

from repro import obs
from repro.concurrency import create_lock
from repro.server.client import ServerClient


class BackendState:
    """Health and free-list of one backend (guarded by the pool lock)."""

    __slots__ = ("idle", "failures", "ejected_until", "ejections")

    def __init__(self) -> None:
        self.idle: list[ServerClient] = []
        self.failures = 0
        #: Monotonic time until which the backend is ejected (0 = not).
        self.ejected_until = 0.0
        #: Lifetime ejection count — scales the cool-down exponent.
        self.ejections = 0


class BackendPool:
    """Pooled, health-checked connections to a fixed set of backends."""

    def __init__(
        self,
        backends: "tuple[str, ...]",
        connect_timeout_s: float = 5.0,
        failure_threshold: int = 1,
        eject_base_s: float = 0.5,
        eject_max_s: float = 15.0,
        eject_jitter: float = 0.5,
        rng: random.Random | None = None,
    ) -> None:
        if not backends:
            raise ValueError("a backend pool needs at least one backend")
        if len(set(backends)) != len(backends):
            raise ValueError(f"duplicate backends: {sorted(backends)}")
        self._connect_timeout_s = connect_timeout_s
        self._failure_threshold = max(1, failure_threshold)
        self._eject_base_s = eject_base_s
        self._eject_max_s = eject_max_s
        self._eject_jitter = eject_jitter
        self._rng = rng or random.Random()
        self._lock = create_lock("BackendPool._lock")
        self._states: dict[str, BackendState] = {
            address: BackendState() for address in backends
        }

    @property
    def backends(self) -> tuple[str, ...]:
        """Every configured backend address, configuration order."""
        return tuple(self._states)

    # -- health -------------------------------------------------------

    def available(self, address: str) -> bool:
        """Is the backend currently eligible (not inside a cool-down)?"""
        state = self._states[address]
        with self._lock:
            return time.monotonic() >= state.ejected_until

    def healthy_count(self) -> int:
        """Backends currently outside a cool-down."""
        now = time.monotonic()
        with self._lock:
            return sum(
                1
                for state in self._states.values()
                if now >= state.ejected_until
            )

    def report_failure(self, address: str) -> None:
        """Record a connection-level failure; eject past the threshold."""
        state = self._states[address]
        with self._lock:
            state.failures += 1
            if state.failures < self._failure_threshold:
                return
            cooldown = min(
                self._eject_base_s * (2.0**state.ejections),
                self._eject_max_s,
            )
            cooldown *= 1.0 + self._eject_jitter * self._rng.random()
            state.ejected_until = time.monotonic() + cooldown
            state.ejections += 1
            state.failures = 0
        obs.counter_add("shard.backend_ejected")
        obs.gauge_set("shard.backends_healthy", self.healthy_count())

    def report_success(self, address: str) -> None:
        """Record a success; a probationary backend is fully re-admitted."""
        state = self._states[address]
        readmitted = False
        with self._lock:
            if state.ejections or state.failures or state.ejected_until:
                readmitted = state.ejections > 0
                state.failures = 0
                state.ejections = 0
                state.ejected_until = 0.0
        if readmitted:
            obs.counter_add("shard.backend_readmitted")
            obs.gauge_set("shard.backends_healthy", self.healthy_count())

    # -- connections --------------------------------------------------

    def checkout(self, address: str) -> ServerClient:
        """An idle connection to ``address``, or a fresh one.

        Connecting happens outside the pool lock; a refused connect
        raises :class:`~repro.server.client.ServerUnavailableError`
        (no client-side retries — replica failover is the router's
        retry policy, and it should move on immediately).
        """
        state = self._states[address]
        with self._lock:
            if state.idle:
                return state.idle.pop()
        host, _, port = address.rpartition(":")
        return ServerClient(
            host, int(port), timeout_s=self._connect_timeout_s
        )

    def checkin(self, address: str, client: ServerClient) -> None:
        """Return a healthy connection to the free-list."""
        state = self._states[address]
        with self._lock:
            state.idle.append(client)

    def discard(self, client: ServerClient) -> None:
        """Close a connection whose framing state is no longer trusted."""
        client.close()

    def close(self) -> None:
        """Close every idle pooled connection."""
        with self._lock:
            drained = [
                client
                for state in self._states.values()
                for client in state.idle
            ]
            for state in self._states.values():
                state.idle.clear()
        for client in drained:
            client.close()
