"""Tests for encoded-space predicate evaluation."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.alp import alp_encode_vector
from repro.core.compressor import compress
from repro.core.predicates import (
    count_range_encoded,
    encoded_bounds,
    filter_vector_encoded,
    vector_may_match,
)
from repro.core.sampler import find_best_combination
from repro.data import get_dataset


def reference_count(values, low, high):
    return int(((values >= low) & (values <= high)).sum())


class TestEncodedBounds:
    def test_monotone_translation(self):
        # Two decimals, e-f = 2: [1.00, 2.00] -> roughly [99, 201].
        d_low, d_high = encoded_bounds(1.0, 2.0, 14, 12)
        assert d_low <= 100 and d_high >= 200

    def test_bounds_are_conservative(self):
        rng = np.random.default_rng(0)
        values = np.round(rng.uniform(0, 100, 1024), 2)
        combo, _ = find_best_combination(values)
        vector = alp_encode_vector(values, combo.exponent, combo.factor)
        low, high = 25.0, 75.0
        positions = filter_vector_encoded(vector, low, high)
        expected = np.flatnonzero((values >= low) & (values <= high))
        assert np.array_equal(positions, expected)


class TestFilterVector:
    def _vector(self, values):
        combo, _ = find_best_combination(values)
        return alp_encode_vector(values, combo.exponent, combo.factor)

    def test_exact_boundaries_included(self):
        values = np.array([1.00, 1.01, 1.02, 1.03])
        vector = self._vector(values)
        positions = filter_vector_encoded(vector, 1.01, 1.02)
        assert positions.tolist() == [1, 2]

    def test_empty_result(self):
        values = np.round(np.linspace(0, 1, 512), 3)
        vector = self._vector(values)
        assert filter_vector_encoded(vector, 5.0, 6.0).size == 0

    def test_exceptions_checked_exactly(self):
        values = np.round(np.linspace(0, 10, 512), 2)
        values[100] = math.pi  # exception, inside [3, 4]
        values[200] = 100.0 * math.pi  # exception, outside
        vector = self._vector(values)
        positions = filter_vector_encoded(vector, 3.0, 4.0)
        expected = np.flatnonzero((values >= 3.0) & (values <= 4.0))
        assert np.array_equal(positions, expected)
        assert 100 in positions.tolist()
        assert 200 not in positions.tolist()

    def test_nan_never_matches(self):
        values = np.round(np.linspace(0, 10, 128), 1)
        values[5] = math.nan
        vector = self._vector(values)
        positions = filter_vector_encoded(vector, -1e9, 1e9)
        assert 5 not in positions.tolist()
        assert positions.size == 127

    @given(
        st.floats(min_value=-50, max_value=50, allow_nan=False),
        st.floats(min_value=0, max_value=80, allow_nan=False),
    )
    @settings(max_examples=40, deadline=None)
    def test_matches_reference_on_random_ranges(self, low, width):
        rng = np.random.default_rng(7)
        values = np.round(rng.uniform(-60, 60, 1024), 2)
        vector = self._vector(values)
        high = low + width
        positions = filter_vector_encoded(vector, low, high)
        expected = np.flatnonzero((values >= low) & (values <= high))
        assert np.array_equal(positions, expected)


class TestVectorMayMatch:
    def test_excluding_header_rejects(self):
        values = np.round(np.linspace(100.0, 101.0, 1024), 2)
        combo, _ = find_best_combination(values)
        vector = alp_encode_vector(values, combo.exponent, combo.factor)
        assert not vector_may_match(vector, 500.0, 600.0)
        assert vector_may_match(vector, 100.5, 100.6)

    def test_never_false_negative(self):
        rng = np.random.default_rng(1)
        for _ in range(20):
            values = np.round(rng.uniform(0, 1000, 256), 1)
            combo, _ = find_best_combination(values)
            vector = alp_encode_vector(values, combo.exponent, combo.factor)
            low = float(rng.uniform(0, 1000))
            high = low + float(rng.uniform(0, 100))
            has_match = bool(((values >= low) & (values <= high)).any())
            if has_match:
                assert vector_may_match(vector, low, high)

    def test_exception_vectors_always_match(self):
        values = np.round(np.linspace(0, 1, 64), 2)
        values[3] = math.pi
        combo, _ = find_best_combination(values)
        vector = alp_encode_vector(values, combo.exponent, combo.factor)
        assert vector_may_match(vector, 1e6, 2e6)


class TestColumnCount:
    @pytest.mark.parametrize("name", ["City-Temp", "Stocks-USA", "POI-lat"])
    def test_count_matches_reference(self, name):
        values = get_dataset(name, n=30_000)
        column = compress(values)
        lo = float(np.percentile(values, 30))
        hi = float(np.percentile(values, 60))
        assert count_range_encoded(column, lo, hi) == reference_count(
            values, lo, hi
        )

    def test_full_range(self):
        values = get_dataset("Dew-Temp", n=10_240)
        column = compress(values)
        assert count_range_encoded(column, -1e12, 1e12) == values.size

    def test_empty_range(self):
        values = get_dataset("Dew-Temp", n=10_240)
        column = compress(values)
        assert count_range_encoded(column, 1e9, 2e9) == 0
