"""Seeded RL3 violations — a lint fixture, never imported."""

from repro import obs


def manually_managed_span():
    span = obs.span("compressor.compress")
    span.__enter__()
    return span


def unregistered_counter():
    obs.counter_add("compressor.not_a_registered_name")


def hygienic():
    with obs.span("compressor.compress"):
        obs.counter_add("compressor.values", 1)
