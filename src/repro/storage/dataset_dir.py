"""A multi-column dataset on disk: one ALPC file per column + manifest.

The single-column ALPC format composes into tables the way columnar
stores do it: a directory with one compressed file per column and a JSON
manifest recording names, row counts and file layout.  The reader opens
columns lazily and can assemble a :class:`~repro.query.table.CompressedTable`
backed directly by the files, so filtered queries push down into storage
via the vector zone maps.

Layout::

    dataset_dir/
      manifest.json     {"format": "alpc-dataset", "version": 1,
                         "rows": N, "columns": {"name": "name.alpc", ...}}
      <column>.alpc     one per column
"""

from __future__ import annotations

import json
import os
import re
from pathlib import Path

import numpy as np

from typing import TYPE_CHECKING

from repro.core.constants import ROWGROUP_VECTORS, VECTOR_SIZE
from repro.storage.columnfile import ColumnFileReader, ColumnFileWriter

if TYPE_CHECKING:
    from repro.api import CompressionOptions
    from repro.query.table import CompressedTable

MANIFEST_NAME = "manifest.json"
FORMAT_NAME = "alpc-dataset"
FORMAT_VERSION = 1


def _safe_filename(column: str) -> str:
    """Map a column name to a filesystem-safe, unique-enough file name."""
    cleaned = re.sub(r"[^A-Za-z0-9_.-]", "_", column)
    return f"{cleaned}.alpc"


def write_dataset(
    directory: str | os.PathLike,
    columns: dict[str, np.ndarray],
    vector_size: int = VECTOR_SIZE,
    rowgroup_vectors: int = ROWGROUP_VECTORS,
    *,
    options: "CompressionOptions | None" = None,
) -> None:
    """Compress a dict of equally-long float64 arrays into a directory.

    Column files are written atomically (temp + rename) and, unless
    ``options.integrity`` is off, in the checksummed v3 format; the
    manifest is written last, also atomically, so a crashed write never
    leaves a directory that parses but points at half-written columns.
    """
    if not columns:
        raise ValueError("a dataset needs at least one column")
    lengths = {name: np.asarray(a).size for name, a in columns.items()}
    if len(set(lengths.values())) != 1:
        raise ValueError(f"column lengths differ: {lengths}")

    path = Path(directory)
    path.mkdir(parents=True, exist_ok=True)
    manifest_columns: dict[str, str] = {}
    used_names: set[str] = set()
    for name, values in columns.items():
        filename = _safe_filename(name)
        if filename in used_names:  # collision after sanitizing
            filename = f"{len(used_names)}_{filename}"
        used_names.add(filename)
        with ColumnFileWriter(
            path / filename,
            vector_size=vector_size,
            rowgroup_vectors=rowgroup_vectors,
            options=options,
        ) as writer:
            writer.write_values(
                np.ascontiguousarray(values, dtype=np.float64)
            )
        manifest_columns[name] = filename
    manifest = {
        "format": FORMAT_NAME,
        "version": FORMAT_VERSION,
        "rows": int(next(iter(lengths.values()))),
        "columns": manifest_columns,
    }
    manifest_tmp = path / f"{MANIFEST_NAME}.tmp-{os.getpid()}"
    manifest_tmp.write_text(json.dumps(manifest, indent=2))
    os.replace(manifest_tmp, path / MANIFEST_NAME)


class DatasetReader:
    """Lazy reader over an alpc-dataset directory.

    With ``degraded=True``, every column reader it opens quarantines
    corrupt row-groups instead of raising (see
    :meth:`ColumnFileReader.scan_report` per column).  With
    ``mmap=True``, every column reader memory-maps its file for
    zero-copy payload access (small/v2 files fall back to buffered).
    """

    def __init__(
        self,
        directory: str | os.PathLike,
        *,
        degraded: bool = False,
        mmap: bool = False,
    ) -> None:
        self._degraded = degraded
        self._mmap = mmap
        self._path = Path(directory)
        manifest_path = self._path / MANIFEST_NAME
        if not manifest_path.exists():
            raise ValueError(f"{self._path} has no {MANIFEST_NAME}")
        manifest = json.loads(manifest_path.read_text())
        if manifest.get("format") != FORMAT_NAME:
            raise ValueError(f"{self._path} is not an {FORMAT_NAME} directory")
        if manifest.get("version") != FORMAT_VERSION:
            raise ValueError(
                f"unsupported dataset version {manifest.get('version')}"
            )
        self._rows = int(manifest["rows"])
        self._files: dict[str, str] = dict(manifest["columns"])
        self._readers: dict[str, ColumnFileReader] = {}

    @property
    def column_names(self) -> tuple[str, ...]:
        """Column names, manifest order."""
        return tuple(self._files)

    @property
    def row_count(self) -> int:
        """Number of rows in every column."""
        return self._rows

    def column_file(self, column: str) -> str:
        """The file name (relative to the dataset directory) of a column."""
        if column not in self._files:
            raise KeyError(
                f"unknown column {column!r}; have {sorted(self._files)}"
            )
        return self._files[column]

    def _reader(self, column: str) -> ColumnFileReader:
        if column not in self._files:
            raise KeyError(
                f"unknown column {column!r}; have {sorted(self._files)}"
            )
        if column not in self._readers:
            self._readers[column] = ColumnFileReader(
                self._path / self._files[column],
                degraded=self._degraded,
                mmap=self._mmap,
            )
        return self._readers[column]

    def read_column(self, column: str) -> np.ndarray:
        """Decompress one column fully."""
        return self._reader(column).read_all()

    def table(self, columns: list[str] | None = None) -> "CompressedTable":
        """A :class:`CompressedTable` over file-backed sources."""
        from repro.query.sources import FileColumnSource
        from repro.query.table import CompressedTable

        names = list(columns) if columns else list(self._files)
        return CompressedTable(
            {
                name: FileColumnSource(reader=self._reader(name))
                for name in names
            }
        )

    def compressed_bytes(self) -> int:
        """Total on-disk size of all column files."""
        return sum(
            (self._path / filename).stat().st_size
            for filename in self._files.values()
        )
