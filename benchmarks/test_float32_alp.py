"""E11 — §4.4: 32-bit ALP on the datasets representable as float32.

The paper notes that datasets with decimal precision <= 10 can be cast
to float32 and compressed by 32-bit ALP "leading to the same compressed
representation as in 64-bits" — i.e. roughly the same absolute bits per
value, which *doubles* the compression ratio relative to the 32-bit
uncompressed base (the paper quotes an average ratio of ~1.77).

Shape claims asserted:

- every eligible dataset round-trips bit-exactly through ALP-32,
- ALP-32 bits/value is close to ALP-64 bits/value on those datasets,
- the average 32-bit compression ratio exceeds 1.5.
"""

from __future__ import annotations

import numpy as np

from repro.bench.harness import bench_n, measure_ratio
from repro.bench.report import format_table, shape_check
from repro.core.float32 import compress_f32, decompress_f32

#: Paper: all datasets except POI's, Basel's, Medicare/1 and NYC/29
#: (precision <= 10 and value range within float32).  CMS/1 mirrors
#: Medicare/1 and is excluded for the same reason; CMS/25 exceeds
#: float32's 7 significant digits.
ELIGIBLE = (
    "Air-Pressure",
    "City-Temp",
    "Dew-Temp",
    "Bio-Temp",
    "PM10-dust",
    "Stocks-DE",
    "Stocks-USA",
    "Wind-dir",
    "CMS/9",
    "Medicare/9",
    "SD-bench",
)


def _measure(dataset_cache):
    n = min(bench_n(), 32_768)
    out = {}
    for name in ELIGIBLE:
        values64 = dataset_cache(name, n)
        values32 = values64.astype(np.float32)
        # Eligibility means the cast is value-preserving up to float32
        # precision; compression must round-trip the float32 exactly.
        column = compress_f32(values32)
        decoded = decompress_f32(column)
        assert np.array_equal(
            decoded.view(np.uint32), values32.view(np.uint32)
        ), name
        out[name] = {
            "bits32": column.bits_per_value(),
            "bits64": measure_ratio("alp", values64),
            "scheme": column.scheme,
        }
    return out


def test_float32_alp(benchmark, emit, dataset_cache):
    results = benchmark.pedantic(
        lambda: _measure(dataset_cache), rounds=1, iterations=1
    )

    rows = [
        [
            name,
            results[name]["bits32"],
            32.0 / results[name]["bits32"],
            results[name]["bits64"],
            results[name]["scheme"],
        ]
        for name in ELIGIBLE
    ]
    ratios = [32.0 / results[n]["bits32"] for n in ELIGIBLE]

    checks = [
        shape_check(
            "ALP-32 (not the rd fallback) engages on every eligible dataset",
            all(results[n]["scheme"] == "alp" for n in ELIGIBLE),
        ),
        shape_check(
            f"average 32-bit compression ratio {np.mean(ratios):.2f}x "
            "(paper ~1.77x; require >= 1.5x)",
            float(np.mean(ratios)) >= 1.5,
        ),
        shape_check(
            "ALP-32 bits/value within 6 bits of ALP-64 on every dataset "
            "(same integers, narrower metadata)",
            all(
                abs(results[n]["bits32"] - results[n]["bits64"]) <= 6.0
                for n in ELIGIBLE
            ),
        ),
    ]

    report = format_table(
        ["dataset", "alp32 bits/val", "ratio vs 32", "alp64 bits/val", "scheme"],
        rows,
        float_format="{:.2f}",
        title="§4.4 — 32-bit ALP on float32-representable datasets",
    )
    report += "\n" + "\n".join(checks)
    emit("float32_alp", report)
    assert all(c.startswith("[PASS]") for c in checks), "\n" + "\n".join(checks)
