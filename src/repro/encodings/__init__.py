"""FastLanes-style lightweight integer encodings.

The paper builds ALP on top of the FastLanes compression library: fused
Frame-Of-Reference (FFOR), plain bit-packing (BP), DICTIONARY, RLE and
Delta.  This subpackage reimplements those building blocks in numpy.

Every encoding follows the same contract:

- ``encode(values) -> Encoded`` where ``Encoded`` is a small dataclass
  carrying the payload plus per-vector parameters, exposes ``size_bits()``
  (the storage footprint the benchmarks report) and round-trips through
  the matching ``decode``.
- Encodings are *vectorized*: they operate on whole arrays with no
  per-value Python control flow, mirroring the paper's design goal.
"""

from repro.encodings.bitpack import (
    bit_width_required,
    pack_bits,
    unpack_bits,
)
from repro.encodings.for_ import ForEncoded, for_decode, for_encode
from repro.encodings.ffor import (
    FforEncoded,
    ffor_decode,
    ffor_decode_unfused,
    ffor_encode,
)
from repro.encodings.delta import DeltaEncoded, delta_decode, delta_encode
from repro.encodings.rle import RleEncoded, rle_decode, rle_encode
from repro.encodings.dictionary import (
    DictionaryEncoded,
    SkewedDictionary,
    dictionary_decode,
    dictionary_encode,
)
from repro.encodings.cascade import (
    CascadeEncoded,
    cascade_compress,
    cascade_decompress,
)
from repro.encodings.transposed import (
    pack_bits_transposed,
    transpose_values,
    unpack_bits_transposed,
    untranspose_values,
)

__all__ = [
    "CascadeEncoded",
    "DeltaEncoded",
    "DictionaryEncoded",
    "FforEncoded",
    "ForEncoded",
    "RleEncoded",
    "SkewedDictionary",
    "bit_width_required",
    "cascade_compress",
    "cascade_decompress",
    "delta_decode",
    "delta_encode",
    "dictionary_decode",
    "dictionary_encode",
    "ffor_decode",
    "ffor_decode_unfused",
    "ffor_encode",
    "for_decode",
    "for_encode",
    "pack_bits",
    "pack_bits_transposed",
    "rle_decode",
    "rle_encode",
    "transpose_values",
    "unpack_bits",
    "unpack_bits_transposed",
    "untranspose_values",
]
