"""32-bit ports of the XOR baselines (Gorilla-32, Chimp-32, Patas-32).

Table 7 benchmarks the float32 versions of the XOR schemes on ML model
weights — where none of them achieves compression (33..46 bits per
32-bit value) because trained weights have random mantissas.  These
ports mirror the 64-bit implementations with narrowed fields:

- Gorilla-32: 5-bit leading-zero count, 5-bit meaningful-bit length;
- Chimp-32: the same four flags, leading-zero classes quantized to
  ``{0, 4, 8, 12, 16, 18, 20, 22}`` and a 5-bit significant count;
- Patas-32: 16-bit packed header (7-bit ring index, 3-bit byte count,
  2-bit trailing zero bytes) + significant bytes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.alputil.bits import float32_to_bits
from repro.alputil.bitstream import BitReader, BitWriter

#: Chimp-32 leading-zero classes (3-bit code).
LEADING_CLASSES_32 = (0, 4, 8, 12, 16, 18, 20, 22)
_ROUND_DOWN_32 = []
for _lz in range(33):
    _cls = 0
    for candidate in LEADING_CLASSES_32:
        if candidate <= _lz:
            _cls = candidate
    _ROUND_DOWN_32.append(_cls)
CLASS_TO_CODE_32 = {cls: i for i, cls in enumerate(LEADING_CLASSES_32)}
CODE_TO_CLASS_32 = dict(enumerate(LEADING_CLASSES_32))

TRAILING_THRESHOLD_32 = 6

RING_SIZE_32 = 128
KEY_MASK_32 = (1 << 10) - 1


def _lz32(x: int) -> int:
    """Leading zeros of a 32-bit value (32 for zero)."""
    return 32 - x.bit_length()


def _tz32(x: int) -> int:
    """Trailing zeros of a 32-bit value (32 for zero)."""
    if x == 0:
        return 32
    return (x & -x).bit_length() - 1


@dataclass(frozen=True)
class Xor32Encoded:
    """A compressed float32 block (any of the three 32-bit schemes)."""

    payload: bytes
    count: int
    scheme: str

    def size_bits(self) -> int:
        """Compressed footprint in bits."""
        return len(self.payload) * 8

    def bits_per_value(self) -> float:
        """Compressed bits per (32-bit) value."""
        return self.size_bits() / self.count if self.count else 0.0


def gorilla32_compress(values: np.ndarray) -> Xor32Encoded:
    """Compress a float32 array with 32-bit Gorilla."""
    values = np.ascontiguousarray(values, dtype=np.float32)
    writer = BitWriter()
    if values.size == 0:
        return Xor32Encoded(writer.finish(), 0, "gorilla32")
    bits_list = float32_to_bits(values).tolist()
    writer.write(bits_list[0], 32)
    stored_leading = -1
    stored_trailing = -1
    prev = bits_list[0]
    for value in bits_list[1:]:
        xor = value ^ prev
        prev = value
        if xor == 0:
            writer.write_bit(0)
            continue
        writer.write_bit(1)
        lead = min(_lz32(xor), 31)
        trail = _tz32(xor)
        if (
            stored_leading >= 0
            and lead >= stored_leading
            and trail >= stored_trailing
        ):
            writer.write_bit(0)
            meaningful = 32 - stored_leading - stored_trailing
            writer.write(xor >> stored_trailing, meaningful)
        else:
            writer.write_bit(1)
            meaningful = 32 - lead - trail
            writer.write(lead, 5)
            writer.write(meaningful - 1, 5)
            writer.write(xor >> trail, meaningful)
            stored_leading = lead
            stored_trailing = trail
    return Xor32Encoded(writer.finish(), values.size, "gorilla32")


def gorilla32_decompress(encoded: Xor32Encoded) -> np.ndarray:
    """Decompress a 32-bit Gorilla block."""
    if encoded.count == 0:
        return np.empty(0, dtype=np.float32)
    reader = BitReader(encoded.payload)
    out = np.empty(encoded.count, dtype=np.uint32)
    current = reader.read(32)
    out[0] = current
    stored_leading = -1
    stored_trailing = -1
    for i in range(1, encoded.count):
        if reader.read_bit() == 0:
            out[i] = current
            continue
        if reader.read_bit() == 0:
            meaningful = 32 - stored_leading - stored_trailing
            current ^= reader.read(meaningful) << stored_trailing
        else:
            lead = reader.read(5)
            meaningful = reader.read(5) + 1
            trail = 32 - lead - meaningful
            current ^= reader.read(meaningful) << trail
            stored_leading = lead
            stored_trailing = trail
        out[i] = current
    return out.view(np.float32)


def chimp32_compress(values: np.ndarray) -> Xor32Encoded:
    """Compress a float32 array with 32-bit Chimp."""
    values = np.ascontiguousarray(values, dtype=np.float32)
    writer = BitWriter()
    if values.size == 0:
        return Xor32Encoded(writer.finish(), 0, "chimp32")
    bits_list = float32_to_bits(values).tolist()
    writer.write(bits_list[0], 32)
    stored_leading = -1
    prev = bits_list[0]
    for value in bits_list[1:]:
        xor = value ^ prev
        prev = value
        if xor == 0:
            writer.write(0b00, 2)
            stored_leading = -1
            continue
        lead_class = _ROUND_DOWN_32[_lz32(xor)]
        trail = _tz32(xor)
        if trail > TRAILING_THRESHOLD_32:
            writer.write(0b01, 2)
            significant = 32 - lead_class - trail
            writer.write(CLASS_TO_CODE_32[lead_class], 3)
            writer.write(significant, 5)
            writer.write(xor >> trail, significant)
            stored_leading = -1
        elif lead_class == stored_leading:
            writer.write(0b10, 2)
            writer.write(xor, 32 - lead_class)
        else:
            writer.write(0b11, 2)
            writer.write(CLASS_TO_CODE_32[lead_class], 3)
            writer.write(xor, 32 - lead_class)
            stored_leading = lead_class
    return Xor32Encoded(writer.finish(), values.size, "chimp32")


def chimp32_decompress(encoded: Xor32Encoded) -> np.ndarray:
    """Decompress a 32-bit Chimp block."""
    if encoded.count == 0:
        return np.empty(0, dtype=np.float32)
    reader = BitReader(encoded.payload)
    out = np.empty(encoded.count, dtype=np.uint32)
    current = reader.read(32)
    out[0] = current
    stored_leading = -1
    for i in range(1, encoded.count):
        flag = reader.read(2)
        if flag == 0b00:
            stored_leading = -1
        elif flag == 0b01:
            lead_class = CODE_TO_CLASS_32[reader.read(3)]
            significant = reader.read(5)
            trail = 32 - lead_class - significant
            current ^= reader.read(significant) << trail
            stored_leading = -1
        elif flag == 0b10:
            current ^= reader.read(32 - stored_leading)
        else:
            lead_class = CODE_TO_CLASS_32[reader.read(3)]
            current ^= reader.read(32 - lead_class)
            stored_leading = lead_class
        out[i] = current
    return out.view(np.float32)


def patas32_compress(values: np.ndarray) -> Xor32Encoded:
    """Compress a float32 array with byte-aligned 32-bit Patas."""
    values = np.ascontiguousarray(values, dtype=np.float32)
    if values.size == 0:
        return Xor32Encoded(b"", 0, "patas32")
    bits_list = float32_to_bits(values).tolist()
    headers = bytearray()
    payload = bytearray()
    ring = [0] * RING_SIZE_32
    ring[0] = bits_list[0]
    last_seen: dict[int, int] = {bits_list[0] & KEY_MASK_32: 0}
    for i in range(1, len(bits_list)):
        value = bits_list[i]
        candidate_pos = last_seen.get(value & KEY_MASK_32, -1)
        if candidate_pos < 0 or i - candidate_pos > RING_SIZE_32:
            candidate_pos = i - 1
        reference = ring[candidate_pos % RING_SIZE_32]
        xor = value ^ reference
        if xor == 0:
            header = candidate_pos % RING_SIZE_32
        else:
            trailing_bytes = 0
            while xor & 0xFF == 0:
                xor >>= 8
                trailing_bytes += 1
            byte_count = (xor.bit_length() + 7) // 8
            header = (
                (candidate_pos % RING_SIZE_32)
                | (byte_count << 7)
                | (trailing_bytes << 10)
            )
            payload += xor.to_bytes(byte_count, "little")
        headers += header.to_bytes(2, "little")
        ring[i % RING_SIZE_32] = value
        last_seen[value & KEY_MASK_32] = i
    stream = (
        bits_list[0].to_bytes(4, "little") + bytes(headers) + bytes(payload)
    )
    # Header block length so decode can split the stream.
    prefix = (len(headers)).to_bytes(4, "little")
    return Xor32Encoded(prefix + stream, values.size, "patas32")


def patas32_decompress(encoded: Xor32Encoded) -> np.ndarray:
    """Decompress a 32-bit Patas block."""
    if encoded.count == 0:
        return np.empty(0, dtype=np.float32)
    data = encoded.payload
    header_len = int.from_bytes(data[:4], "little")
    first = int.from_bytes(data[4:8], "little")
    headers = data[8 : 8 + header_len]
    payload = data[8 + header_len :]
    out = np.empty(encoded.count, dtype=np.uint32)
    ring = [0] * RING_SIZE_32
    out[0] = first
    ring[0] = first
    offset = 0
    for i in range(1, encoded.count):
        header = int.from_bytes(headers[(i - 1) * 2 : i * 2], "little")
        index = header & 0x7F
        byte_count = (header >> 7) & 0x7
        trailing_bytes = (header >> 10) & 0x3
        reference = ring[index]
        if byte_count == 0:
            current = reference
        else:
            xor = int.from_bytes(
                payload[offset : offset + byte_count], "little"
            )
            offset += byte_count
            current = reference ^ (xor << (8 * trailing_bytes))
        ring[i % RING_SIZE_32] = current
        out[i] = current
    return out.view(np.float32)
