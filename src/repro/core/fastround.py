"""The SIMD-friendly ``fast_double_round`` trick (§3.1, "Fast Rounding").

``round()`` has no SIMD instruction, so ALP rounds by pushing the value
into the range ``[2**52, 2**53)`` where doubles cannot carry a fractional
part: ``rounded = cast<int64>(n + sweet - sweet)`` with
``sweet = 2**51 + 2**52``.  The trick is exact for ``|n| < 2**51``; beyond
that the verification step of the encoder catches the corruption and the
value becomes an exception, so no separate range check is needed on the
hot path.
"""

from __future__ import annotations

import numpy as np

from repro.core.constants import SWEET_SPOT


def fast_round(values: np.ndarray) -> np.ndarray:
    """Round float64 values half-to-even via the sweet-spot trick.

    Returns int64.  Values outside ``(-2**51, 2**51)``, NaN and ±inf give
    meaningless (but deterministic) results — by design, since ALP's
    round-trip verification will flag them as exceptions anyway.
    """
    values = np.asarray(values, dtype=np.float64)
    shifted = values + SWEET_SPOT
    shifted -= SWEET_SPOT
    # Clamp non-finite and out-of-int64 garbage in place to keep the cast
    # warning-free; such values always fail the round-trip check anyway.
    np.clip(shifted, -(2.0**62), 2.0**62, out=shifted)  # maps +-inf too
    nan_mask = np.isnan(shifted)
    if nan_mask.any():
        shifted[nan_mask] = 0.0
    return shifted.astype(np.int64)


def fast_round_scalar(value: float) -> int:
    """Scalar reference of :func:`fast_round` (used by the pure-Python
    decode path of the Figure 4 implementation sweep)."""
    import math

    shifted = (value + SWEET_SPOT) - SWEET_SPOT
    if not math.isfinite(shifted):
        return 0
    return int(max(-(2.0**62), min(2.0**62, shifted)))
