"""CRC32C: lane-parallel vs pinned scalar oracle, buffer-protocol inputs."""

from __future__ import annotations

import tracemalloc

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage.integrity import (
    PARALLEL_MIN_BYTES,
    crc32c,
    crc32c_reference,
)


class TestKnownVectors:
    def test_check_value(self):
        # The iSCSI/RFC 3720 check value every crc32c agrees on.
        assert crc32c(b"123456789") == 0xE3069283

    def test_empty(self):
        assert crc32c(b"") == 0
        assert crc32c_reference(b"") == 0

    def test_chaining_matches_whole(self):
        data = bytes(range(256)) * 64
        split = len(data) // 3
        chained = crc32c(data[split:], crc32c(data[:split]))
        assert chained == crc32c(data)


class TestEquivalence:
    @given(st.binary(min_size=0, max_size=3 * PARALLEL_MIN_BYTES))
    @settings(max_examples=60, deadline=None)
    def test_parallel_matches_reference(self, data):
        assert crc32c(data) == crc32c_reference(data)

    @given(
        st.binary(min_size=1, max_size=2 * PARALLEL_MIN_BYTES),
        st.integers(min_value=0, max_value=0xFFFFFFFF),
    )
    @settings(max_examples=30, deadline=None)
    def test_seeded_state_matches_reference(self, data, seed):
        assert crc32c(data, seed) == crc32c_reference(data, seed)

    def test_sizes_straddling_the_lane_threshold(self):
        rng = np.random.default_rng(3)
        for n in (
            PARALLEL_MIN_BYTES - 1,
            PARALLEL_MIN_BYTES,
            PARALLEL_MIN_BYTES + 1,
            64 * PARALLEL_MIN_BYTES + 13,
        ):
            data = rng.integers(0, 256, n, dtype=np.uint8).tobytes()
            assert crc32c(data) == crc32c_reference(data)


class TestBufferInputs:
    DATA = bytes(range(256)) * 256  # 64 KiB, well into the lane path

    @pytest.mark.parametrize(
        "wrap",
        [
            bytes,
            bytearray,
            memoryview,
            lambda b: memoryview(b)[:],
            lambda b: np.frombuffer(b, dtype=np.uint8),
        ],
        ids=["bytes", "bytearray", "memoryview", "mv-slice", "ndarray"],
    )
    def test_buffer_types_agree(self, wrap):
        expect = crc32c(self.DATA)
        assert crc32c(wrap(self.DATA)) == expect
        assert crc32c_reference(wrap(self.DATA)) == expect

    def test_memoryview_slice_matches_bytes_slice(self):
        view = memoryview(self.DATA)[1000:50_000]
        assert crc32c(view) == crc32c(self.DATA[1000:50_000])

    def test_non_contiguous_view_rejected(self):
        strided = memoryview(self.DATA)[::2]
        with pytest.raises(ValueError, match="C-contiguous"):
            crc32c(strided)
        with pytest.raises(ValueError, match="C-contiguous"):
            crc32c_reference(strided)

    def test_memoryview_input_is_not_materialized(self):
        # The no-copy pin: checksumming an 8 MiB view must not allocate
        # anything near the buffer's size (a bytes(view) fallback would
        # show up as an ~8 MiB transient in the tracemalloc peak).
        data = bytes(8 * 1024 * 1024)
        view = memoryview(data)
        crc32c(view)  # warm numpy/table caches outside the traced window
        tracemalloc.start()
        try:
            tracemalloc.reset_peak()
            base = tracemalloc.get_traced_memory()[0]
            crc32c(view)
            peak = tracemalloc.get_traced_memory()[1]
        finally:
            tracemalloc.stop()
        assert peak - base < len(data) // 2
