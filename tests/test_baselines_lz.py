"""Tests for the from-scratch LZ4-style compressor."""

import math

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.lz import (
    lz_compress,
    lz_compress_bytes,
    lz_decompress,
    lz_decompress_bytes,
)


def bitwise_equal(a, b):
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    return a.shape == b.shape and np.array_equal(
        a.view(np.uint64), b.view(np.uint64)
    )


class TestByteLayer:
    def test_empty(self):
        assert lz_decompress_bytes(lz_compress_bytes(b"")) == b""

    def test_short_literal_only(self):
        data = b"abc"
        assert lz_decompress_bytes(lz_compress_bytes(data)) == data

    def test_repetitive_compresses(self):
        data = b"abcdefgh" * 1000
        payload = lz_compress_bytes(data)
        assert len(payload) < len(data) / 10
        assert lz_decompress_bytes(payload) == data

    def test_self_overlapping_rle(self):
        data = b"A" * 5000
        payload = lz_compress_bytes(data)
        assert len(payload) < 64
        assert lz_decompress_bytes(payload) == data

    def test_long_literal_extension_bytes(self):
        rng = np.random.default_rng(0)
        data = rng.integers(0, 256, 5000, dtype=np.uint8).tobytes()
        assert lz_decompress_bytes(lz_compress_bytes(data)) == data

    def test_incompressible_overhead_small(self):
        rng = np.random.default_rng(1)
        data = rng.integers(0, 256, 10_000, dtype=np.uint8).tobytes()
        payload = lz_compress_bytes(data)
        assert len(payload) < len(data) * 1.05

    @given(st.binary(max_size=4000))
    @settings(max_examples=60, deadline=None)
    def test_arbitrary_bytes_roundtrip(self, data):
        assert lz_decompress_bytes(lz_compress_bytes(data)) == data

    @given(
        st.lists(st.sampled_from([b"ab", b"cd", b"abcd", b"x"]), max_size=200)
    )
    @settings(max_examples=40, deadline=None)
    def test_structured_bytes_roundtrip(self, chunks):
        data = b"".join(chunks)
        assert lz_decompress_bytes(lz_compress_bytes(data)) == data


class TestDoubleLayer:
    def test_roundtrip_dataset(self):
        from repro.data import get_dataset

        values = get_dataset("SD-bench", n=10_000)
        assert bitwise_equal(lz_decompress(lz_compress(values)), values)

    def test_special_values(self):
        values = np.array([math.nan, math.inf, -0.0, 5e-324] * 50)
        assert bitwise_equal(lz_decompress(lz_compress(values)), values)

    def test_duplicate_heavy_column_compresses(self):
        from repro.data import get_dataset

        values = get_dataset("Gov/26", n=60_000)
        bits = lz_compress(values).bits_per_value()
        assert bits < 8

    def test_worse_ratio_than_deflate(self):
        # The family's defining trade-off: byte-aligned tokens, no
        # entropy coder -> more bits than zlib on the same column.
        import zlib

        from repro.data import get_dataset

        values = get_dataset("City-Temp", n=30_000)
        lz_bits = lz_compress(values).bits_per_value()
        zlib_bits = len(zlib.compress(values.tobytes(), 6)) * 8 / values.size
        assert lz_bits > zlib_bits

    def test_registry_integration(self):
        from repro.baselines.registry import get_codec

        values = np.round(np.random.default_rng(0).uniform(0, 9, 2000), 1)
        bits = get_codec("lz4-like(gp)").roundtrip_bits_per_value(values)
        assert 0 < bits < 70
