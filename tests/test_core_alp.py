"""Unit and property tests for the ALP core (Algorithms 1 and 2)."""

import math

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.alp import (
    alp_analyze,
    alp_decode_vector,
    alp_decode_vector_scalar,
    alp_encode_vector,
    estimate_size_bits,
)
from repro.core.fastround import fast_round, fast_round_scalar


class TestFastRound:
    def test_matches_round_half_even(self):
        values = np.array([0.5, 1.5, 2.5, -0.5, -1.5, 2.4, 2.6])
        expected = np.array([0, 2, 2, 0, -2, 2, 3])
        assert np.array_equal(fast_round(values), expected)

    def test_integers_pass_through(self):
        values = np.array([0.0, 1.0, -1.0, 123456.0])
        assert np.array_equal(fast_round(values), values.astype(np.int64))

    def test_paper_example(self):
        # Section 2.6: round(80604.99999999985448) == 80605.
        assert fast_round(np.array([80604.99999999985448]))[0] == 80605

    def test_nan_inf_give_deterministic_garbage(self):
        out = fast_round(np.array([math.nan, math.inf, -math.inf]))
        assert out.shape == (3,)  # must not raise

    def test_scalar_matches_vector(self):
        rng = np.random.default_rng(1)
        values = rng.uniform(-1e9, 1e9, size=200)
        vec = fast_round(values)
        for v, expected in zip(values, vec, strict=True):
            assert fast_round_scalar(float(v)) == expected

    @given(
        st.floats(
            min_value=-(2.0**50), max_value=2.0**50,
            allow_nan=False, allow_infinity=False,
        )
    )
    def test_within_half_ulp_of_true_round(self, x):
        rounded = fast_round(np.array([x]))[0]
        # Sweet-spot rounding is round-half-to-even, like np.round.
        assert rounded == int(np.round(x))


class TestAlpAnalyze:
    def test_paper_running_example(self):
        # n = 8.0605, e = 14, f = 10 must encode to 80605 (Section 2.6).
        values = np.array([8.0605])
        encoded, exceptions = alp_analyze(values, 14, 10)
        assert encoded[0] == 80605
        assert not exceptions[0]

    def test_naive_exponent_fails_on_8_0605(self):
        # The motivating failure: e = 4 (visible precision) does not
        # round-trip 8.0605 (Section 2.5).
        values = np.array([8.0605])
        _, exceptions = alp_analyze(values, 4, 0)
        assert exceptions[0]

    def test_nan_is_exception(self):
        _, exceptions = alp_analyze(np.array([math.nan]), 14, 10)
        assert exceptions[0]

    def test_inf_is_exception(self):
        _, exceptions = alp_analyze(np.array([math.inf, -math.inf]), 14, 10)
        assert exceptions.all()

    def test_negative_zero_is_not_silently_lost(self):
        # -0.0 encodes to integer 0, which decodes to +0.0 -> must be an
        # exception under the bitwise test.
        _, exceptions = alp_analyze(np.array([-0.0]), 14, 10)
        assert exceptions[0]

    def test_integers_encode_with_e0_f0(self):
        values = np.array([1.0, -5.0, 100.0])
        encoded, exceptions = alp_analyze(values, 0, 0)
        assert not exceptions.any()
        assert encoded.tolist() == [1, -5, 100]

    def test_two_decimals_encode_with_e14_f12(self):
        values = np.array([146.12, 0.01, -99.99])
        encoded, exceptions = alp_analyze(values, 14, 12)
        assert not exceptions.any()
        assert encoded.tolist() == [14612, 1, -9999]

    def test_high_precision_is_exception(self):
        # 17 significant digits cannot ride through the 2**53 ceiling.
        values = np.array([0.12345678901234567 * math.pi])
        _, exceptions = alp_analyze(values, 14, 0)
        assert exceptions[0]


class TestEncodeDecodeVector:
    def _roundtrip(self, values, e, f):
        vector = alp_encode_vector(np.asarray(values, dtype=np.float64), e, f)
        decoded = alp_decode_vector(vector)
        assert np.array_equal(
            decoded.view(np.uint64),
            np.asarray(values, dtype=np.float64).view(np.uint64),
        )
        return vector

    def test_clean_vector_has_no_exceptions(self):
        values = np.round(np.linspace(0.01, 10.0, 1024), 2)
        vector = self._roundtrip(values, 14, 12)
        assert vector.exception_count == 0

    def test_exceptions_patched(self):
        values = np.round(np.linspace(0.01, 10.0, 1024), 2)
        values[100] = math.pi  # not decimal-origin
        values[500] = math.nan
        vector = self._roundtrip(values, 14, 12)
        assert vector.exception_count == 2
        assert vector.exc_positions.tolist() == [100, 500]

    def test_all_exception_vector(self):
        values = np.array([math.pi, math.e, math.nan])
        vector = self._roundtrip(values, 14, 12)
        assert vector.exception_count == 3

    def test_placeholder_does_not_widen_bitwidth(self):
        values = np.full(100, 1.25)
        values[50] = math.pi
        vector = alp_encode_vector(values, 14, 12)
        # Placeholder equals the first encoded value -> spread unchanged.
        assert vector.ffor.bit_width == 0

    def test_fused_and_unfused_decode_agree(self):
        values = np.round(np.random.default_rng(2).uniform(0, 100, 1024), 3)
        vector = alp_encode_vector(values, 14, 11)
        assert np.array_equal(
            alp_decode_vector(vector, fused=True),
            alp_decode_vector(vector, fused=False),
        )

    def test_scalar_decode_matches_vectorized(self):
        values = np.round(np.random.default_rng(3).uniform(-50, 50, 512), 2)
        values[7] = math.pi
        vector = alp_encode_vector(values, 14, 12)
        assert np.array_equal(
            alp_decode_vector_scalar(vector).view(np.uint64),
            alp_decode_vector(vector).view(np.uint64),
        )

    def test_bits_per_value_sane(self):
        values = np.round(np.random.default_rng(4).uniform(0, 100, 1024), 2)
        vector = alp_encode_vector(values, 14, 12)
        assert 0 < vector.bits_per_value() < 64

    def test_signed_zero_roundtrips_as_exception(self):
        values = np.array([0.0, -0.0, 1.5])
        self._roundtrip(values, 14, 13)

    @given(
        st.lists(
            st.integers(min_value=-(10**10), max_value=10**10),
            min_size=1,
            max_size=200,
        ),
        st.integers(min_value=0, max_value=6),
    )
    @settings(max_examples=60, deadline=None)
    def test_decimal_origin_values_roundtrip(self, digits, places):
        values = np.array(digits, dtype=np.float64) / (10.0**places)
        vector = alp_encode_vector(values, 14, 14 - places)
        decoded = alp_decode_vector(vector)
        assert np.array_equal(
            decoded.view(np.uint64), values.view(np.uint64)
        )

    @given(
        st.lists(
            st.floats(allow_nan=True, allow_infinity=True, width=64),
            min_size=1,
            max_size=100,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_any_doubles_roundtrip_bitexactly(self, xs):
        # Losslessness must hold for arbitrary garbage: everything that
        # fails the decimal encode simply becomes an exception.
        values = np.array(xs, dtype=np.float64)
        vector = alp_encode_vector(values, 14, 10)
        decoded = alp_decode_vector(vector)
        assert np.array_equal(
            decoded.view(np.uint64), values.view(np.uint64)
        )


class TestEstimateSizeBits:
    def test_exceptions_cost_80_bits(self):
        values = np.array([math.pi])
        assert estimate_size_bits(values, 14, 10) == 80

    def test_clean_vector_costs_width_times_count(self):
        values = np.array([1.01, 1.02, 1.03, 1.04])
        # d in {101..104}, spread 3 -> 2 bits each.
        assert estimate_size_bits(values, 14, 12) == 8

    def test_better_factor_shrinks_estimate(self):
        values = np.round(np.random.default_rng(5).uniform(0, 100, 256), 2)
        loose = estimate_size_bits(values, 14, 0)
        tight = estimate_size_bits(values, 14, 12)
        assert tight < loose
