"""Runtime lock-order sanitizer — the dynamic complement to RL8.

Static analysis (RL8) proves ordering facts about lock acquisitions it
can see syntactically; this module observes the acquisitions that
*actually happen* while the real suites run.  It plugs into
:func:`repro.concurrency.set_lock_factory`, so every lock created
through :func:`repro.concurrency.create_lock` while installed is
instrumented:

- **acquisition order**: a global directed graph on lock *names*
  records ``A -> B`` whenever a thread acquires ``B`` while holding
  ``A``.  A new edge that closes a cycle is a lock-order inversion —
  two threads taking those locks in opposite orders can deadlock, even
  if this run happened not to.
- **re-entrant acquisition**: acquiring a lock a thread already holds
  (``threading.Lock`` self-deadlocks; with a timeout it merely fails).
- **hold-while-blocking**: ``time.sleep`` called with any instrumented
  lock held (the patched ``sleep`` checks the current thread's stack).

Reports accumulate in :attr:`LockOrderSanitizer.reports`; the pytest
hook in ``tests/conftest.py`` (enabled by ``REPRO_LOCK_SANITIZER=1``)
fails any test that produced one.  Edges are recorded before the
blocking ``acquire`` call, so an inversion is reported even when the
run deadlocks-and-times-out rather than completing.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from types import TracebackType
from typing import Callable

from repro import concurrency


@dataclass(frozen=True)
class SanitizerReport:
    """One observed concurrency hazard."""

    kind: str  # "lock-order-inversion" | "reentrant-acquire" | "hold-while-blocking"
    detail: str


class _SanitizedLock:
    """A ``threading.Lock`` that narrates acquisitions to its sanitizer."""

    __slots__ = ("_inner", "name", "_sanitizer")

    def __init__(self, name: str, sanitizer: "LockOrderSanitizer") -> None:
        self._inner = threading.Lock()
        self.name = name
        self._sanitizer = sanitizer

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        self._sanitizer._before_acquire(self.name)
        got = self._inner.acquire(blocking, timeout)
        if got:
            self._sanitizer._did_acquire(self.name)
        return got

    def release(self) -> None:
        self._inner.release()
        self._sanitizer._did_release(self.name)

    def locked(self) -> bool:
        return self._inner.locked()

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> None:
        self.release()


@dataclass
class LockOrderSanitizer:
    """Collects lock-order facts from instrumented locks.

    The graph and report list are guarded by a *plain* lock (never
    instrumented — the sanitizer must not observe itself).  Held-lock
    stacks are per-thread and unsynchronized.
    """

    reports: list[SanitizerReport] = field(default_factory=list)

    def __post_init__(self) -> None:
        self._guard = threading.Lock()
        #: lock name -> names acquired at least once while it was held.
        self._edges: dict[str, set[str]] = {}
        self._seen_inversions: set[frozenset[str]] = set()
        self._local = threading.local()
        self._previous_factory: concurrency.LockFactory | None = None
        self._previous_sleep: Callable[[float], None] | None = None
        self._installed = False

    # ------------------------------------------------------------ factory

    def make_lock(self, name: str) -> _SanitizedLock:
        return _SanitizedLock(name, self)

    def install(self) -> "LockOrderSanitizer":
        """Route ``create_lock`` through this sanitizer and patch
        ``time.sleep`` for hold-while-blocking detection."""
        if self._installed:
            return self
        self._previous_factory = concurrency.set_lock_factory(self.make_lock)
        self._previous_sleep = previous_sleep = time.sleep

        def _watched_sleep(seconds: float) -> None:
            held = list(self._stack())
            if held:
                self._report(
                    "hold-while-blocking",
                    f"time.sleep({seconds!r}) while holding "
                    f"{', '.join(repr(n) for n in held)}",
                )
            previous_sleep(seconds)

        setattr(time, "sleep", _watched_sleep)
        self._installed = True
        return self

    def uninstall(self) -> None:
        if not self._installed:
            return
        concurrency.set_lock_factory(self._previous_factory)
        if self._previous_sleep is not None:
            setattr(time, "sleep", self._previous_sleep)
        self._previous_factory = None
        self._previous_sleep = None
        self._installed = False

    def __enter__(self) -> "LockOrderSanitizer":
        return self.install()

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> None:
        self.uninstall()

    # --------------------------------------------------------- observation

    def _stack(self) -> list[str]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def _report(self, kind: str, detail: str) -> None:
        with self._guard:
            self.reports.append(SanitizerReport(kind, detail))

    def _path_exists(self, source: str, target: str) -> bool:
        """Graph reachability; caller holds ``_guard``."""
        seen = {source}
        frontier = [source]
        while frontier:
            node = frontier.pop()
            if node == target:
                return True
            for nxt in self._edges.get(node, ()):
                if nxt not in seen:
                    seen.add(nxt)
                    frontier.append(nxt)
        return False

    def _before_acquire(self, name: str) -> None:
        stack = self._stack()
        if name in stack:
            self._report(
                "reentrant-acquire",
                f"lock {name!r} acquired by a thread already holding it "
                f"(held stack: {stack!r})",
            )
            return
        if not stack:
            return
        holder = stack[-1]
        with self._guard:
            # An edge closing a path back to the holder is an inversion:
            # some other execution took these locks in the other order.
            if name != holder and self._path_exists(name, holder):
                pair = frozenset((name, holder))
                if pair not in self._seen_inversions:
                    self._seen_inversions.add(pair)
                    self.reports.append(
                        SanitizerReport(
                            "lock-order-inversion",
                            f"acquiring {name!r} while holding {holder!r}, "
                            f"but {name!r} -> {holder!r} was previously "
                            "observed: opposite orders can deadlock",
                        )
                    )
            self._edges.setdefault(holder, set()).add(name)

    def _did_acquire(self, name: str) -> None:
        self._stack().append(name)

    def _did_release(self, name: str) -> None:
        stack = self._stack()
        for index in range(len(stack) - 1, -1, -1):
            if stack[index] == name:
                del stack[index]
                return
