"""The paper's primary contribution: ALP and ALP_rd.

Modules:

- :mod:`repro.core.constants` — vector size, sampling parameters, the
  ``F10`` / ``i_F10`` multiplier tables from Algorithm 1.
- :mod:`repro.core.fastround` — the SIMD-friendly sweet-spot rounding.
- :mod:`repro.core.alp` — per-vector decimal encoding (Algorithms 1–2),
  in both numpy-vectorized and pure-scalar reference forms.
- :mod:`repro.core.sampler` — the two-level adaptive sampling (§3.2).
- :mod:`repro.core.alprd` — the real-doubles fallback (Algorithm 3).
- :mod:`repro.core.compressor` — row-group orchestration: scheme choice,
  ALP vs ALP_rd, the public compress/decompress entry points.
- :mod:`repro.core.float32` — the 32-bit ports (§4.4).
"""

from repro.core.alp import (
    AlpVector,
    alp_decode_vector,
    alp_encode_vector,
)
from repro.core.alprd import (
    AlpRdRowGroup,
    alprd_decode,
    alprd_encode,
)
from repro.core.access import decode_at, decode_slice
from repro.core.autotune import (
    choose_codec,
    compress_auto,
    decompress_auto,
)
from repro.core.compressor import (
    CompressedColumn,
    CompressedRowGroups,
    compress,
    compress_parallel,
    decompress,
)
from repro.core.streaming import StreamingCompressor, compress_stream
from repro.core.sampler import (
    ExponentFactor,
    find_best_combination,
    first_level_sample,
    second_level_sample,
)

__all__ = [
    "AlpRdRowGroup",
    "AlpVector",
    "CompressedColumn",
    "CompressedRowGroups",
    "ExponentFactor",
    "StreamingCompressor",
    "alp_decode_vector",
    "alp_encode_vector",
    "alprd_decode",
    "alprd_encode",
    "choose_codec",
    "compress",
    "compress_auto",
    "compress_parallel",
    "compress_stream",
    "decode_at",
    "decode_slice",
    "decompress",
    "decompress_auto",
    "find_best_combination",
    "first_level_sample",
    "second_level_sample",
]
