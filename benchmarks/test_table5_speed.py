"""E5 — Table 5: [de]compression speed, micro-benchmark protocol.

The paper repeatedly [de]compresses one L1-resident 1024-value vector
per dataset and reports average tuples per CPU cycle.  We time the same
unit of work, report values/second plus the tuples-per-cycle proxy
(values/sec over a nominal 3.5 GHz), and print the paper's Table 5
column next to ours.

Absolute magnitudes are CPython-vs-C++ and do not transfer; the claims
asserted are *relative* (and exclude the general-purpose codec, whose
core is C in both worlds — see EXPERIMENTS.md):

- ALP is the fastest floating-point scheme at compression and at
  decompression,
- PDE is the second fastest at decompression but among the slowest at
  compression (its per-value exponent search),
- Elf is the slowest scheme overall.
"""

from __future__ import annotations

import numpy as np

from repro.bench.harness import (
    alp_vector_speed,
    codec_speed_on_vector,
    dataset_vector,
)
from repro.bench.report import format_table, shape_check
from repro.data.paper_reference import TABLE5_TUPLES_PER_CYCLE

SCHEMES = ("alp", "chimp", "chimp128", "elf", "gorilla", "pde", "patas", "zlib(gp)")

#: Subset of datasets for the speed sweep (speeds vary little by dataset
#: for the scalar codecs; the full list multiplies runtime by 4 for the
#: same conclusion — the sweep covers every dataset family).
SPEED_DATASETS = (
    "Air-Pressure",
    "City-Temp",
    "Stocks-USA",
    "Bitcoin-like:Btc-Price",
    "CMS/9",
    "Food-prices",
    "Gov/26",
    "NYC/29",
    "POI-lat",
    "SD-bench",
)


def _dataset_list():
    return [name.split(":")[-1] for name in SPEED_DATASETS]


def _measure():
    comp: dict[str, list[float]] = {s: [] for s in SCHEMES}
    dec: dict[str, list[float]] = {s: [] for s in SCHEMES}
    for dataset in _dataset_list():
        vector = dataset_vector(dataset)
        for scheme in SCHEMES:
            if scheme == "alp":
                c, d = alp_vector_speed(vector, repeats=3)
            else:
                c, d = codec_speed_on_vector(scheme, vector, repeats=3)
            comp[scheme].append(c.values_per_second)
            dec[scheme].append(d.values_per_second)
    return (
        {s: float(np.mean(v)) for s, v in comp.items()},
        {s: float(np.mean(v)) for s, v in dec.items()},
    )


def test_table5_speed(benchmark, emit):
    comp, dec = benchmark.pedantic(_measure, rounds=1, iterations=1)

    ghz = 3.5e9
    rows = []
    for scheme in SCHEMES:
        paper_key = "zstd" if scheme == "zlib(gp)" else scheme
        paper = TABLE5_TUPLES_PER_CYCLE[paper_key]
        rows.append(
            [
                scheme,
                comp[scheme] / 1e6,
                comp[scheme] / ghz,
                paper["compress"],
                dec[scheme] / 1e6,
                dec[scheme] / ghz,
                paper["decompress"],
            ]
        )

    fp = [s for s in SCHEMES if s != "zlib(gp)"]
    checks = [
        shape_check(
            "ALP fastest floating-point compression",
            all(comp["alp"] >= comp[s] for s in fp),
        ),
        shape_check(
            "ALP fastest floating-point decompression",
            all(dec["alp"] >= dec[s] for s in fp),
        ),
        shape_check(
            "PDE second-fastest floating-point decompression",
            all(dec["pde"] >= dec[s] for s in fp if s not in ("alp", "pde")),
        ),
        # In the paper PDE also compresses slower than the XOR schemes;
        # here those are per-value Python while PDE's search vectorizes,
        # so only the PDE-vs-ALP relation transfers (see EXPERIMENTS.md).
        shape_check(
            "PDE compression much slower than ALP's (search cost)",
            comp["pde"] * 2 <= comp["alp"],
        ),
        shape_check(
            "PDE decompression far outpaces its own compression",
            dec["pde"] >= 3 * comp["pde"],
        ),
        shape_check(
            "Elf slowest at compression",
            all(comp["elf"] <= comp[s] for s in fp),
        ),
        shape_check(
            "ALP decompresses at least 5x faster than every XOR scheme",
            all(
                dec["alp"] >= 5 * dec[s]
                for s in ("gorilla", "chimp", "chimp128", "patas", "elf")
            ),
        ),
    ]

    report = format_table(
        [
            "scheme",
            "comp Mv/s",
            "comp tpc*",
            "paper tpc",
            "dec Mv/s",
            "dec tpc*",
            "paper tpc",
        ],
        rows,
        float_format="{:.3f}",
        title=(
            "Table 5 — [de]compression speed (vector micro-benchmark, "
            "averaged over 10 datasets; tpc* = values/sec / 3.5GHz proxy)"
        ),
    )
    report += "\n" + "\n".join(checks)
    emit("table5_speed", report)
    assert all(c.startswith("[PASS]") for c in checks), "\n" + "\n".join(checks)
