"""The runtime lock-order sanitizer: detection and non-detection."""

from __future__ import annotations

import threading
import time

import pytest

from repro import concurrency
from repro.lint.sanitizer import LockOrderSanitizer

pytestmark = pytest.mark.no_lock_sanitizer


@pytest.fixture()
def sanitizer():
    instance = LockOrderSanitizer()
    instance.install()
    try:
        yield instance
    finally:
        instance.uninstall()


def _kinds(sanitizer):
    return [report.kind for report in sanitizer.reports]


def test_factory_roundtrip_restores_default():
    before = concurrency.create_lock("t.plain")
    assert isinstance(before, type(threading.Lock()))
    with LockOrderSanitizer() as sanitizer:
        instrumented = concurrency.create_lock("t.instrumented")
        assert instrumented.__class__.__name__ == "_SanitizedLock"
        with instrumented:
            assert instrumented.locked()
        assert sanitizer.reports == []
    after = concurrency.create_lock("t.plain2")
    assert isinstance(after, type(threading.Lock()))


def test_nested_install_restores_outer_factory():
    outer = LockOrderSanitizer().install()
    inner = LockOrderSanitizer().install()
    inner.uninstall()
    lock = concurrency.create_lock("t.nested")
    with lock:
        pass
    outer.uninstall()
    assert outer.reports == [] and inner.reports == []


def test_consistent_order_is_clean(sanitizer):
    a = concurrency.create_lock("t.a")
    b = concurrency.create_lock("t.b")
    for _ in range(3):
        with a:
            with b:
                pass
    assert sanitizer.reports == []


def test_order_inversion_detected(sanitizer):
    a = concurrency.create_lock("t.a")
    b = concurrency.create_lock("t.b")
    with a:
        with b:
            pass
    with b:
        with a:
            pass
    assert _kinds(sanitizer) == ["lock-order-inversion"]
    assert "'t.a'" in sanitizer.reports[0].detail
    assert "'t.b'" in sanitizer.reports[0].detail


def test_inversion_reported_once_per_pair(sanitizer):
    a = concurrency.create_lock("t.a")
    b = concurrency.create_lock("t.b")
    for _ in range(3):
        with a:
            with b:
                pass
        with b:
            with a:
                pass
    assert _kinds(sanitizer) == ["lock-order-inversion"]


def test_transitive_inversion_detected(sanitizer):
    a = concurrency.create_lock("t.a")
    b = concurrency.create_lock("t.b")
    c = concurrency.create_lock("t.c")
    with a:
        with b:
            pass
    with b:
        with c:
            pass
    with c:
        with a:  # closes the a -> b -> c cycle
            pass
    assert "lock-order-inversion" in _kinds(sanitizer)


def test_reentrant_acquire_detected(sanitizer):
    lock = concurrency.create_lock("t.again")
    with lock:
        assert lock.acquire(blocking=False) is False
    assert _kinds(sanitizer) == ["reentrant-acquire"]


def test_sleep_while_holding_detected(sanitizer):
    lock = concurrency.create_lock("t.held")
    with lock:
        time.sleep(0)
    assert _kinds(sanitizer) == ["hold-while-blocking"]
    assert "'t.held'" in sanitizer.reports[0].detail


def test_sleep_without_lock_is_clean(sanitizer):
    with concurrency.create_lock("t.free"):
        pass
    time.sleep(0)
    assert sanitizer.reports == []


def test_cross_thread_inversion_detected(sanitizer):
    """The classic: two threads, opposite orders, no overlap needed."""
    a = concurrency.create_lock("t.a")
    b = concurrency.create_lock("t.b")

    def forward():
        with a:
            with b:
                pass

    def backward():
        with b:
            with a:
                pass

    first = threading.Thread(target=forward)
    first.start()
    first.join()
    second = threading.Thread(target=backward)
    second.start()
    second.join()
    assert _kinds(sanitizer) == ["lock-order-inversion"]


def test_per_thread_stacks_do_not_mix(sanitizer):
    """Two threads each holding one lock is not a nesting."""
    a = concurrency.create_lock("t.a")
    b = concurrency.create_lock("t.b")
    barrier = threading.Barrier(2)

    def hold(lock):
        with lock:
            barrier.wait(timeout=5)
            barrier.wait(timeout=5)

    threads = [
        threading.Thread(target=hold, args=(lock,)) for lock in (a, b)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert sanitizer.reports == []


def test_real_serving_stack_is_clean_under_sanitizer(sanitizer, tmp_path):
    """Cache-over-pool fills (the RL9 hot path) produce zero reports."""
    import numpy as np

    from repro.server.bufferpool import BufferPool
    from repro.server.cache import DecodedVectorCache

    pool = BufferPool()
    cache = DecodedVectorCache(byte_budget=1 << 20, pool=pool)

    def fill(buffer: np.ndarray) -> None:
        buffer[:] = 1.5

    for index in range(8):
        values = cache.load_into(("k", index % 3), 64, fill)
        assert values.shape == (64,)
    with pytest.raises(RuntimeError):
        cache.load_into(
            ("boom", 0), 64, lambda _buf: (_ for _ in ()).throw(RuntimeError())
        )
    assert pool.stats().outstanding == 0
    assert sanitizer.reports == []
