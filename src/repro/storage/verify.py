"""Integrity walking and repair for ALPC files and dataset directories.

:func:`verify_column_file` checks every section of one file — magic,
header, footer, and each row-group payload — and returns a structured
:class:`FileVerifyReport` (JSON-able via ``as_dict``) naming each bad
section with its offset and reason.  :func:`verify_dataset` walks an
``alpc-dataset`` directory, manifest included.  :func:`verify_path`
dispatches on what the path is; the ``alp-repro verify`` CLI is a thin
wrapper over it.

:func:`repair_column_file` rewrites a damaged file keeping every intact
row-group: payload bytes are copied verbatim (no recompression), zone
maps are carried over, and checksums are recomputed, so the output is
always a clean current-version file.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from pathlib import Path

from repro import obs
from repro.storage.columnfile import (
    FORMAT_VERSION,
    ColumnFileReader,
    ColumnFileWriter,
)
from repro.storage.errors import CorruptFileError, IntegrityError
from repro.storage.tablefile import (
    FORMAT_VERSION_V4,
    TableFileReader,
    TableFileWriter,
    file_format_version,
)


@dataclass(frozen=True)
class SectionReport:
    """Verification result of one file section.

    ``column`` is set for v4 ``chunk`` sections (one chunk per
    row-group × column); single-column sections leave it ``None``.
    """

    section: str  # "file", "header", "footer", "rowgroup", "chunk"
    index: int | None
    offset: int
    length: int
    ok: bool
    error: str | None = None
    column: str | None = None

    def as_dict(self) -> dict[str, object]:
        return {
            "section": self.section,
            "index": self.index,
            "offset": self.offset,
            "length": self.length,
            "ok": self.ok,
            "error": self.error,
            "column": self.column,
        }


@dataclass(frozen=True)
class FileVerifyReport:
    """Every section of one file, verified."""

    path: str
    format_version: int | None
    checksummed: bool
    ok: bool
    sections: tuple[SectionReport, ...]

    @property
    def bad_sections(self) -> tuple[SectionReport, ...]:
        return tuple(s for s in self.sections if not s.ok)

    def as_dict(self) -> dict[str, object]:
        return {
            "path": self.path,
            "format_version": self.format_version,
            "checksummed": self.checksummed,
            "ok": self.ok,
            "sections": [s.as_dict() for s in self.sections],
        }


@dataclass(frozen=True)
class DatasetVerifyReport:
    """Per-column verification of an alpc-dataset directory."""

    path: str
    ok: bool
    manifest_error: str | None
    files: tuple[FileVerifyReport, ...]

    def as_dict(self) -> dict[str, object]:
        return {
            "path": self.path,
            "ok": self.ok,
            "manifest_error": self.manifest_error,
            "files": [f.as_dict() for f in self.files],
        }


@dataclass(frozen=True)
class RepairReport:
    """Outcome of rewriting a file around its corrupt sections."""

    source: str
    destination: str
    rowgroups_kept: int
    rowgroups_dropped: int
    values_kept: int
    values_dropped: int
    dropped: tuple[dict[str, object], ...]

    def as_dict(self) -> dict[str, object]:
        return {
            "source": self.source,
            "destination": self.destination,
            "rowgroups_kept": self.rowgroups_kept,
            "rowgroups_dropped": self.rowgroups_dropped,
            "values_kept": self.values_kept,
            "values_dropped": self.values_dropped,
            "dropped": list(self.dropped),
        }


def verify_column_file(path: str | os.PathLike) -> FileVerifyReport:
    """Walk every section of one ALPC file and report its integrity.

    Never raises on corruption — damage is *reported*.  (Missing files
    still raise ``OSError``: that is an environment problem, not a
    corrupt input.)
    """
    path_str = os.fspath(path)
    with obs.span("columnfile.verify"):
        try:
            version = file_format_version(path_str)
        except CorruptFileError as exc:
            section = SectionReport(
                section="file",
                index=None,
                offset=0,
                length=os.path.getsize(path_str),
                ok=False,
                error=exc.reason,
            )
            return FileVerifyReport(
                path=path_str,
                format_version=None,
                checksummed=False,
                ok=False,
                sections=(section,),
            )
        if version >= FORMAT_VERSION_V4:
            return _verify_table_file(path_str)
        try:
            reader = ColumnFileReader(path_str, degraded=True)
        except CorruptFileError as exc:
            section = SectionReport(
                section="file",
                index=None,
                offset=0,
                length=os.path.getsize(path_str),
                ok=False,
                error=exc.reason,
            )
            return FileVerifyReport(
                path=path_str,
                format_version=None,
                checksummed=False,
                ok=False,
                sections=(section,),
            )
        sections = [
            SectionReport(
                section="header",
                index=None,
                offset=0,
                length=reader.header_length,
                ok=True,
            ),
            SectionReport(
                section="footer",
                index=None,
                offset=reader.footer_offset,
                length=reader.footer_length,
                ok=True,
            ),
        ]
        for index, meta in enumerate(reader.metadata):
            err = reader.check_rowgroup(index)
            if err is None:
                # Checksums catch bit-flips; a decode pass additionally
                # catches framing damage (and is the only check that
                # exists for version-2 files).
                try:
                    reader.read_rowgroup(index)
                except IntegrityError as exc:
                    err = exc  # type: ignore[assignment]
            sections.append(
                SectionReport(
                    section="rowgroup",
                    index=index,
                    offset=meta.offset,
                    length=meta.length,
                    ok=err is None,
                    error=getattr(err, "reason", None),
                )
            )
        return FileVerifyReport(
            path=path_str,
            format_version=reader.format_version,
            checksummed=reader.format_version >= FORMAT_VERSION,
            ok=all(s.ok for s in sections),
            sections=tuple(sections),
        )


def _verify_table_file(path_str: str) -> FileVerifyReport:
    """The v4 walk: header, footer, and every (row-group, column) chunk."""
    try:
        reader = TableFileReader(path_str, degraded=True)
    except CorruptFileError as exc:
        section = SectionReport(
            section="file",
            index=None,
            offset=0,
            length=os.path.getsize(path_str),
            ok=False,
            error=exc.reason,
        )
        return FileVerifyReport(
            path=path_str,
            format_version=None,
            checksummed=False,
            ok=False,
            sections=(section,),
        )
    sections = [
        SectionReport(
            section="header",
            index=None,
            offset=0,
            length=reader.header_length,
            ok=True,
        ),
        SectionReport(
            section="footer",
            index=None,
            offset=reader.footer_offset,
            length=reader.footer_length,
            ok=True,
        ),
    ]
    for index in range(reader.rowgroup_count):
        for column in reader.column_names:
            meta = reader.chunk_meta(index, column)
            err: IntegrityError | None = reader.check_chunk(index, column)
            if err is None:
                # Checksums catch bit-flips; the decode pass
                # additionally catches framing damage.
                try:
                    reader.read_chunk(index, column)
                except IntegrityError as exc:
                    err = exc
            sections.append(
                SectionReport(
                    section="chunk",
                    index=index,
                    offset=meta.offset,
                    length=meta.length,
                    ok=err is None,
                    error=getattr(err, "reason", None),
                    column=column,
                )
            )
    return FileVerifyReport(
        path=path_str,
        format_version=reader.format_version,
        checksummed=True,
        ok=all(s.ok for s in sections),
        sections=tuple(sections),
    )


def verify_dataset(directory: str | os.PathLike) -> DatasetVerifyReport:
    """Verify every column file of an alpc-dataset directory."""
    import json

    path = Path(directory)
    manifest_path = path / "manifest.json"
    try:
        manifest = json.loads(manifest_path.read_text())
        files = dict(manifest["columns"])
    except (OSError, ValueError, KeyError, TypeError) as exc:
        return DatasetVerifyReport(
            path=str(path),
            ok=False,
            manifest_error=f"manifest unreadable: {exc}",
            files=(),
        )
    reports = []
    for filename in files.values():
        column_path = path / filename
        if not column_path.exists():
            reports.append(
                FileVerifyReport(
                    path=str(column_path),
                    format_version=None,
                    checksummed=False,
                    ok=False,
                    sections=(
                        SectionReport(
                            section="file",
                            index=None,
                            offset=0,
                            length=0,
                            ok=False,
                            error="column file listed in manifest is missing",
                        ),
                    ),
                )
            )
            continue
        reports.append(verify_column_file(column_path))
    return DatasetVerifyReport(
        path=str(path),
        ok=all(r.ok for r in reports),
        manifest_error=None,
        files=tuple(reports),
    )


def verify_path(
    path: str | os.PathLike,
) -> FileVerifyReport | DatasetVerifyReport:
    """Verify a single ALPC file or a dataset directory, whichever it is."""
    if os.path.isdir(path):
        return verify_dataset(path)
    return verify_column_file(path)


def repair_column_file(
    source: str | os.PathLike, destination: str | os.PathLike
) -> RepairReport:
    """Rewrite ``source`` into ``destination`` keeping intact row-groups.

    Intact payloads are copied byte-for-byte; corrupt ones are dropped
    and itemized in the report.  The output is a clean, checksummed
    current-version file (repairing a v2 file upgrades it to v3).
    Raises :class:`CorruptFileError` when the source's header or footer
    is damaged — without the footer there is no row-group table to
    salvage from.
    """
    src = os.fspath(source)
    dst = os.fspath(destination)
    if os.path.abspath(src) == os.path.abspath(dst):
        raise ValueError("repair cannot rewrite a file onto itself")
    if file_format_version(src) >= FORMAT_VERSION_V4:
        return _repair_table_file(src, dst)
    reader = ColumnFileReader(src, degraded=True)
    dropped: list[dict[str, object]] = []
    kept = values_kept = values_dropped = 0
    with ColumnFileWriter(dst, vector_size=reader.vector_size) as writer:
        for index, meta in enumerate(reader.metadata):
            err = reader.check_rowgroup(index)
            if err is None:
                try:
                    reader.read_rowgroup(index)
                except IntegrityError as exc:
                    err = exc  # type: ignore[assignment]
            if err is not None:
                dropped.append(
                    {
                        "index": index,
                        "offset": meta.offset,
                        "length": meta.length,
                        "count": meta.count,
                        "reason": getattr(err, "reason", str(err)),
                    }
                )
                values_dropped += meta.count
                continue
            writer.append_serialized(reader.rowgroup_payload(index), meta)
            kept += 1
            values_kept += meta.count
    return RepairReport(
        source=src,
        destination=dst,
        rowgroups_kept=kept,
        rowgroups_dropped=len(dropped),
        values_kept=values_kept,
        values_dropped=values_dropped,
        dropped=tuple(dropped),
    )


def _repair_table_file(src: str, dst: str) -> RepairReport:
    """Rewrite a v4 table keeping row-groups whose every chunk is intact.

    A table row-group is all-or-nothing: dropping one column's chunk
    while keeping its siblings would misalign rows across columns, so a
    single corrupt chunk drops the whole row-group (itemized with the
    offending column).  Intact chunk bytes are copied verbatim; zone
    maps are carried over and checksums recomputed.
    """
    reader = TableFileReader(src, degraded=True)
    dropped: list[dict[str, object]] = []
    kept = values_kept = values_dropped = 0
    with TableFileWriter(
        dst, reader.schema, vector_size=reader.vector_size
    ) as writer:
        for index in range(reader.rowgroup_count):
            err: IntegrityError | None = None
            bad_column: str | None = None
            for column in reader.column_names:
                err = reader.check_chunk(index, column)
                if err is None:
                    try:
                        reader.read_chunk(index, column)
                    except IntegrityError as exc:
                        err = exc
                if err is not None:
                    bad_column = column
                    break
            n_rows = reader.rowgroup_rows(index)
            if err is not None:
                meta = reader.chunk_meta(index, bad_column or "")
                dropped.append(
                    {
                        "index": index,
                        "column": bad_column,
                        "offset": meta.offset,
                        "length": meta.length,
                        "count": n_rows,
                        "reason": getattr(err, "reason", str(err)),
                    }
                )
                values_dropped += n_rows
                continue
            writer.append_chunks(
                n_rows,
                [
                    (
                        reader.chunk_payload(index, column),
                        reader.chunk_meta(index, column),
                    )
                    for column in reader.column_names
                ],
            )
            kept += 1
            values_kept += n_rows
    return RepairReport(
        source=src,
        destination=dst,
        rowgroups_kept=kept,
        rowgroups_dropped=len(dropped),
        values_kept=values_kept,
        values_dropped=values_dropped,
        dropped=tuple(dropped),
    )
