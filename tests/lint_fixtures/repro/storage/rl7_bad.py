"""Seeded RL7 violations: payload copies inside the storage layer.

Scoped as ``repro/storage/rl7_bad.py`` via the fixture-prefix
stripping, so the storage-copy rule applies exactly as it would to the
real read path.  Each ``bytes(...)`` here re-materializes a payload the
zero-copy path hands around as a ``memoryview``; the copy-free shapes
at the bottom must stay legal.
"""


def copy_payload_view(view: memoryview) -> bytes:
    return bytes(view)  # RL7: full-payload copy of a zero-copy slice


def copy_sliced_payload(data: bytes, start: int, end: int) -> bytes:
    return bytes(memoryview(data)[start:end])  # RL7: copies the slice


def copy_attribute_payload(reader) -> bytes:
    return bytes(reader.payload)  # RL7: detaches without justification


def allowed_shapes() -> tuple[bytes, bytes, bytes, bytes]:
    zero_fill = bytes(8)  # ok: size-based construction, no source buffer
    literal = bytes([0x41, 0x4C, 0x50, 0x43])  # ok: literal magic
    encoded = bytes("ALPC", "ascii")  # ok: multi-argument encode form
    empty = bytes()  # ok: no argument at all
    return zero_fill, literal, encoded, empty


def justified_copy(view: memoryview) -> bytes:
    # The reader closes right after this; the response must outlive it.
    return bytes(view)  # reprolint: ignore[RL7]
