"""Tests for the observability layer (repro.obs)."""

import json
import threading
import time

import numpy as np
import pytest

from repro import obs
from repro.core.compressor import compress, decompress


@pytest.fixture(autouse=True)
def _clean_obs():
    """Every test starts and ends with metrics off and empty."""
    obs.disable()
    obs.reset()
    yield
    obs.disable()
    obs.reset()


class TestDisabledNoOp:
    def test_disabled_by_default(self):
        assert not obs.enabled()

    def test_disabled_span_is_shared_singleton(self):
        # The disabled path must not allocate per call.
        assert obs.span("a") is obs.span("b")

    def test_disabled_records_nothing(self):
        with obs.span("stage"):
            obs.counter_add("events", 3)
            obs.gauge_set("level", 1.5)
        snap = obs.snapshot()
        assert snap["counters"] == {}
        assert snap["gauges"] == {}
        assert snap["spans"] == {}
        assert snap["enabled"] is False

    def test_pipeline_records_nothing_when_disabled(self):
        values = np.linspace(0.0, 1.0, 2048)
        decompress(compress(values))
        snap = obs.snapshot()
        assert snap["counters"] == {}
        assert snap["spans"] == {}


class TestCountersAndGauges:
    def test_counter_accumulates(self):
        obs.enable()
        obs.counter_add("c")
        obs.counter_add("c", 4)
        assert obs.snapshot()["counters"]["c"] == 5

    def test_gauge_last_write_wins(self):
        obs.enable()
        obs.gauge_set("g", 1.0)
        obs.gauge_set("g", 2.5)
        assert obs.snapshot()["gauges"]["g"] == 2.5


class TestSpans:
    def test_span_records_count_and_time(self):
        obs.enable()
        for _ in range(3):
            with obs.span("work"):
                time.sleep(0.001)
        stat = obs.snapshot()["spans"]["work"]
        assert stat["count"] == 3
        assert stat["total_s"] >= 0.003
        assert 0 < stat["min_s"] <= stat["max_s"] <= stat["total_s"]
        assert stat["mean_s"] == pytest.approx(stat["total_s"] / 3)

    def test_nested_spans_build_paths(self):
        obs.enable()
        with obs.span("outer"):
            with obs.span("inner"):
                pass
            with obs.span("inner"):
                pass
        spans = obs.snapshot()["spans"]
        assert spans["outer"]["count"] == 1
        assert spans["outer/inner"]["count"] == 2
        assert "inner" not in spans

    def test_span_survives_exception(self):
        obs.enable()
        with pytest.raises(RuntimeError):
            with obs.span("failing"):
                raise RuntimeError("boom")
        assert obs.snapshot()["spans"]["failing"]["count"] == 1
        # The stack unwound: a new top-level span is not nested.
        with obs.span("after"):
            pass
        assert "after" in obs.snapshot()["spans"]

    def test_thread_local_nesting(self):
        obs.enable()
        done = threading.Event()

        def worker():
            with obs.span("worker"):
                done.wait(1.0)

        with obs.span("main"):
            t = threading.Thread(target=worker)
            t.start()
            done.set()
            t.join()
        spans = obs.snapshot()["spans"]
        # The worker's span must not nest under the main thread's.
        assert "worker" in spans
        assert "main/worker" not in spans


class TestSnapshotReset:
    def test_snapshot_json_round_trip(self):
        obs.enable()
        obs.counter_add("c", 2)
        with obs.span("s"):
            pass
        parsed = json.loads(obs.snapshot_json())
        assert parsed == obs.snapshot()
        assert set(parsed) == {"enabled", "counters", "gauges", "spans"}

    def test_reset_clears_values_not_flag(self):
        obs.enable()
        obs.counter_add("c")
        obs.reset()
        snap = obs.snapshot()
        assert snap["counters"] == {}
        assert snap["enabled"] is True
        assert obs.enabled()

    def test_disable_keeps_recorded_values(self):
        obs.enable()
        obs.counter_add("c")
        obs.disable()
        assert obs.snapshot()["counters"]["c"] == 1


class TestPipelineInstrumentation:
    def test_compress_decompress_spans_and_counters(self):
        obs.enable()
        values = np.round(np.linspace(-50.0, 50.0, 4096), 2)
        restored = decompress(compress(values))
        assert np.array_equal(restored, values)
        snap = obs.snapshot()
        spans = snap["spans"]
        counters = snap["counters"]
        assert spans["compressor.compress"]["count"] == 1
        assert (
            spans["compressor.compress/compressor.rowgroup"]["count"] >= 1
        )
        assert counters["compressor.values"] == values.size
        assert counters["compressor.values_decoded"] == values.size
        # Layer coverage: sampler, alp, ffor and bitpack all reported.
        layers = {name.split(".")[0] for name in counters}
        assert {"compressor", "sampler", "alp", "ffor", "bitpack"} <= layers

    def test_parallel_compress_records(self):
        from repro.core.compressor import compress_parallel

        obs.enable()
        rng = np.random.default_rng(7)
        values = np.round(rng.normal(0.0, 10.0, 1024 * 250), 3)
        column = compress_parallel(values, threads=2)
        assert np.array_equal(decompress(column), values)
        snap = obs.snapshot()
        assert snap["spans"]["compressor.compress_parallel"]["count"] == 1
        assert snap["counters"]["compressor.rowgroups"] == 3
