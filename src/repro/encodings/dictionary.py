"""Dictionary encodings (plain and skewed).

Two flavours are needed by the paper:

- :func:`dictionary_encode` — a plain DICTIONARY encoding over int64
  payloads, used by the cascade layer (DICT codes bit-packed with FOR,
  dictionary entries handed to ALP for further compression).
- :class:`SkewedDictionary` — the small, exception-tolerant dictionary
  ALP_rd uses on the left (front-bit) parts: at most ``2**3 = 8`` 16-bit
  entries, values outside the dictionary stored as 16-bit exceptions with
  16-bit positions (Section 3.4).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

import numpy as np

from repro.encodings.bitpack import pack_bits, unpack_bits
from repro.core.constants import RD_DICTIONARY_BITS
from repro.encodings.for_ import ForEncoded, for_decode, for_encode

#: Maximum code width of the ALP_rd skewed dictionary (2**3 = 8 entries);
#: the format-level constant lives in :mod:`repro.core.constants`.
MAX_SKEWED_DICT_BITS = RD_DICTIONARY_BITS
#: Exception tolerance of the skewed dictionary: pick the smallest size
#: whose exception rate stays below this fraction (paper: 10%).
SKEWED_EXCEPTION_TOLERANCE = 0.10


@dataclass(frozen=True)
class DictionaryEncoded:
    """A plain dictionary-encoded integer vector."""

    codes: ForEncoded
    dictionary: np.ndarray  # distinct int64 values, code order
    count: int

    @property
    def cardinality(self) -> int:
        """Number of distinct values."""
        return int(self.dictionary.size)

    def size_bits(self) -> int:
        """Codes + uncompressed dictionary (the cascade layer replaces the
        dictionary part with an ALP-compressed footprint)."""
        return self.codes.size_bits() + self.dictionary.size * 64


def dictionary_encode(values: np.ndarray) -> DictionaryEncoded:
    """Encode int64 values as codes into a sorted dictionary."""
    values = np.ascontiguousarray(values, dtype=np.int64)
    dictionary, codes = np.unique(values, return_inverse=True)
    return DictionaryEncoded(
        codes=for_encode(codes.astype(np.int64)),
        dictionary=dictionary,
        count=values.size,
    )


def dictionary_decode(encoded: DictionaryEncoded) -> np.ndarray:
    """Decode a :class:`DictionaryEncoded` vector back to int64."""
    codes = for_decode(encoded.codes)
    return encoded.dictionary[codes]


@dataclass(frozen=True)
class SkewedDictionary:
    """The fitted left-part dictionary of an ALP_rd row-group.

    Attributes:
        entries: most-frequent left parts, at most 8, as uint16-range ints.
        code_width: bits per code, ``ceil(log2(len(entries)))`` with a
            minimum of 0 (single-entry dictionary needs no code bits).
    """

    entries: np.ndarray  # uint16 values
    code_width: int

    @classmethod
    def fit(cls, sample_left_parts: np.ndarray) -> "SkewedDictionary":
        """Fit a dictionary to sampled left parts per the paper's rule.

        Considers sizes ``2**b`` for ``b <= 3``, fills each with the most
        frequent sample values, and keeps the smallest ``b`` whose
        exception fraction is at most 10% (otherwise ``b = 3``).
        """
        sample = np.asarray(sample_left_parts, dtype=np.uint64)
        if sample.size == 0:
            return cls(entries=np.zeros(1, dtype=np.uint16), code_width=0)
        counts = Counter(sample.tolist())
        ranked = [value for value, _ in counts.most_common(1 << MAX_SKEWED_DICT_BITS)]
        total = sample.size
        chosen_b = MAX_SKEWED_DICT_BITS
        for b in range(MAX_SKEWED_DICT_BITS + 1):
            size = 1 << b
            covered = sum(counts[v] for v in ranked[:size])
            if (total - covered) / total <= SKEWED_EXCEPTION_TOLERANCE:
                chosen_b = b
                break
        entries = np.asarray(ranked[: 1 << chosen_b], dtype=np.uint16)
        # code_width counts the bits needed to address the entries actually
        # stored, which may be fewer than 2**chosen_b distinct values.
        width = max(int(entries.size - 1).bit_length(), 0)
        return cls(entries=entries, code_width=width)

    def encode(
        self, left_parts: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Map left parts to codes; return (codes, exc_positions, exc_values).

        Left parts absent from the dictionary become exceptions: their code
        is 0 (a placeholder that stays within the packed width) and their
        true 16-bit value and position are returned for separate storage.
        """
        left = np.asarray(left_parts, dtype=np.uint64)
        sorter = np.argsort(self.entries, kind="stable")
        sorted_entries = self.entries[sorter].astype(np.uint64)
        idx = np.searchsorted(sorted_entries, left)
        idx_clipped = np.minimum(idx, sorted_entries.size - 1)
        found = sorted_entries[idx_clipped] == left
        codes = np.zeros(left.size, dtype=np.uint64)
        codes[found] = sorter[idx_clipped[found]].astype(np.uint64)
        # fits: positions < vector size <= 65535
        exc_positions = np.flatnonzero(~found).astype(np.uint16)
        # fits: left parts are at most MAX_RD_LEFT_BITS = 16 bits wide
        exc_values = left[~found].astype(np.uint16)
        return codes, exc_positions, exc_values

    def decode(
        self,
        codes: np.ndarray,
        exc_positions: np.ndarray,
        exc_values: np.ndarray,
    ) -> np.ndarray:
        """Inverse of :meth:`encode`: dictionary lookup + exception patch."""
        codes = np.asarray(codes, dtype=np.int64)
        left = self.entries.astype(np.uint64)[codes]
        if exc_positions.size:
            left[exc_positions.astype(np.int64)] = exc_values.astype(np.uint64)
        return left

    def size_bits(self) -> int:
        """Dictionary entries stored as 16-bit values, once per row-group."""
        return int(self.entries.size) * 16


def pack_codes(codes: np.ndarray, width: int) -> bytes:
    """Bit-pack dictionary codes (thin alias kept for symmetry)."""
    return pack_bits(codes, width)


def unpack_codes(buffer: bytes, width: int, count: int) -> np.ndarray:
    """Bit-unpack dictionary codes."""
    return unpack_bits(buffer, width, count)
