"""Property: the RL9 dataflow fixpoint equals brute-force path enumeration.

The linearity analysis is a may-analysis with union join and
distributive transfers, so its fixpoint must equal the union of
per-path outcomes (MOP).  This test generates random control-flow
shapes — nested ifs, loops (with break/continue), try/except/finally,
with blocks — seeded with acquire/release/transfer/escape statements,
then compares :func:`analyze_linearity`'s verdict against enumerating
every path through the *same* CFG (back/looping edges capped at two
traversals per path, which is enough for a single-generation token
domain: any token's witness path needs an edge at most twice — once
reaching its acquire, once after).
"""

from __future__ import annotations

import ast

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.lint.cfg import EXCEPTION, build_cfg
from repro.lint.rules_linearity import (
    _LinearityAnalysis,
    analyze_linearity,
    collect_events,
    findings_from_states,
    run_forward,
)

# ----------------------------------------------------------- program maker

_LEAVES = [
    "buf = pool.acquire(8)",
    "pool.release(buf)",
    "pool.transfer(buf)",
    "work(buf)",
    "tick()",
    "x = 1",
    "return buf",
    "return None",
    "raise ValueError()",
]
_LOOP_LEAVES = _LEAVES + ["break", "continue"]


def _indent(lines: list[str]) -> list[str]:
    return ["    " + line for line in lines]


@st.composite
def _body(draw, depth: int, in_loop: bool) -> list[str]:
    leaves = _LOOP_LEAVES if in_loop else _LEAVES
    n = draw(st.integers(min_value=1, max_value=2))
    lines: list[str] = []
    for _ in range(n):
        if depth > 0 and draw(st.booleans()):
            shape = draw(
                st.sampled_from(
                    ["if", "ifelse", "while", "for", "tryexc", "tryfin", "with"]
                )
            )
            inner = draw(_body(depth=depth - 1, in_loop=in_loop or shape in ("while", "for")))
            if shape == "if":
                lines += ["if cond:"] + _indent(inner)
            elif shape == "ifelse":
                other = draw(_body(depth=depth - 1, in_loop=in_loop))
                lines += (
                    ["if cond:"] + _indent(inner) + ["else:"] + _indent(other)
                )
            elif shape == "while":
                lines += ["while cond:"] + _indent(inner)
            elif shape == "for":
                lines += ["for item in items:"] + _indent(inner)
            elif shape == "tryexc":
                handler = draw(_body(depth=depth - 1, in_loop=in_loop))
                lines += (
                    ["try:"]
                    + _indent(inner)
                    + ["except ValueError:"]
                    + _indent(handler)
                )
            elif shape == "tryfin":
                cleanup = draw(_body(depth=depth - 1, in_loop=in_loop))
                lines += (
                    ["try:"] + _indent(inner) + ["finally:"] + _indent(cleanup)
                )
            else:
                lines += ["with cm() as h:"] + _indent(inner)
        else:
            lines.append(draw(st.sampled_from(leaves)))
    return lines


@st.composite
def _program(draw) -> str:
    lines = draw(_body(depth=2, in_loop=False))
    return "\n".join(
        ["def f(pool, cond, items, cm, work, tick):"] + _indent(lines)
    )


# ------------------------------------------------------- path enumeration


def _enumerate_in_states(cfg, analysis, edge_cap: int = 2, path_budget: int = 200_000):
    """Union of per-path states at every block, edges capped per path."""
    in_states: dict[int, set[frozenset[object]]] = {}
    budget = [path_budget]

    class _Exhausted(Exception):
        pass

    def visit(index: int, state: frozenset[object], used: dict[tuple[int, int, str], int]):
        budget[0] -= 1
        if budget[0] < 0:
            raise _Exhausted
        in_states.setdefault(index, set()).add(state)
        if index == cfg.exit:
            return
        block = cfg.blocks[index]
        out_normal = analysis.transfer(block, state)
        out_exc = analysis.transfer_exception(block, state)
        for dst, kind in cfg.succs(index):
            edge = (index, dst, kind)
            if used.get(edge, 0) >= edge_cap:
                continue
            used[edge] = used.get(edge, 0) + 1
            visit(dst, out_exc if kind == EXCEPTION else out_normal, used)
            used[edge] -= 1

    try:
        visit(cfg.entry, analysis.initial(), {})
    except _Exhausted:
        return None
    return {
        index: frozenset().union(*states)
        for index, states in in_states.items()
    }


def _verdict(findings):
    return sorted(
        (f.kind, f.var, getattr(f.node, "lineno", 0)) for f in findings
    )


# ----------------------------------------------------------- the property


@settings(max_examples=80, deadline=None)
@given(_program())
def test_fixpoint_matches_path_enumeration(source: str):
    func = ast.parse(source).body[0]
    assert isinstance(func, ast.FunctionDef)
    cfg = build_cfg(func)
    events, sites = collect_events(cfg)
    if not sites:
        assert analyze_linearity(cfg) == []
        return
    analysis = _LinearityAnalysis(events)
    enumerated = _enumerate_in_states(cfg, analysis)
    assume(enumerated is not None)  # rare path explosion: skip the example
    expected = findings_from_states(cfg, events, sites, enumerated)
    assert _verdict(analyze_linearity(cfg)) == _verdict(expected)


def test_known_leak_shapes_agree_with_enumeration():
    source = (
        "def f(pool, cond, items, cm, work, tick):\n"
        "    buf = pool.acquire(8)\n"
        "    while cond:\n"
        "        work(buf)\n"
        "    pool.release(buf)\n"
    )
    func = ast.parse(source).body[0]
    cfg = build_cfg(func)
    findings = analyze_linearity(cfg)
    assert [f.kind for f in findings] == ["leak"]  # work() may raise
    events, sites = collect_events(cfg)
    enumerated = _enumerate_in_states(cfg, _LinearityAnalysis(events))
    assert _verdict(findings) == _verdict(
        findings_from_states(cfg, events, sites, enumerated)
    )
