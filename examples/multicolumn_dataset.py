"""A multi-column dataset on disk, queried with late materialization.

Builds a trades table (price / volume / fee), stores it as an
alpc-dataset directory (one compressed file per column + manifest),
reopens it cold, and runs a filtered aggregation where only the
qualifying row positions of the payload columns are materialized.

Run:  python examples/multicolumn_dataset.py
"""

import tempfile
import time
from pathlib import Path

import numpy as np

from repro import api
from repro.query import FilterPredicate, group_by
from repro.query.sources import FileColumnSource

rng = np.random.default_rng(5)
n = 400_000
price = np.round(np.cumsum(rng.normal(0, 0.04, n)) + 250.0, 2)
volume = rng.integers(1, 900, n).astype(np.float64)
venue = rng.integers(0, 6, n).astype(np.float64)

directory = Path(tempfile.mkdtemp()) / "trades"
api.write_dataset(
    directory, {"price": price, "volume": volume, "venue": venue}
)

raw_mib = (price.nbytes + volume.nbytes + venue.nbytes) / 2**20
reader = api.open_dataset(directory)
disk_mib = reader.compressed_bytes() / 2**20
print(f"dataset   : {n:,} rows x {len(reader.column_names)} columns")
print(f"on disk   : {disk_mib:.2f} MiB (raw {raw_mib:.2f} MiB, "
      f"{raw_mib / disk_mib:.1f}x smaller)")

# Filtered aggregation with late materialization: volume decodes only at
# positions where the price predicate holds.
table = reader.table(["price", "volume"])
lo, hi = float(np.percentile(price, 49)), float(np.percentile(price, 51))
start = time.perf_counter()
traded = table.aggregate(
    "volume", "sum", predicate=FilterPredicate("price", lo, hi)
)
elapsed = time.perf_counter() - start

mask = (price >= lo) & (price <= hi)
assert traded == float(volume[mask].sum())
print(f"\nSUM(volume) WHERE price in [{lo:.2f}, {hi:.2f}]")
print(f"  -> {traded:,.0f} shares across {int(mask.sum()):,} trades "
      f"({elapsed * 1000:.0f} ms, filter + late materialization)")

# GROUP BY directly over the compressed files.
per_venue = group_by(
    FileColumnSource.open(directory / "venue.alpc"),
    FileColumnSource.open(directory / "volume.alpc"),
    kind="sum",
)
print("\nvolume per venue (GROUP BY over compressed columns):")
for key in sorted(per_venue):
    print(f"  venue {int(key)}: {per_venue[key]:>13,.0f}")
