"""CRC32C (Castagnoli) checksums for the on-disk column format.

Format v3 protects every section of an ALPC file — header, each
row-group payload, and the footer — with a CRC32C, the checksum used by
iSCSI, ext4 and most columnar formats (Parquet, ORC).  The polynomial's
error-detection properties matter less here than the ecosystem
compatibility: a v3 file's checksums can be re-verified with any
standard crc32c implementation.

The implementation is pure Python (the environment bakes in no crc32c
wheel and :mod:`zlib` only provides the plain CRC32 polynomial) using
slicing-by-8: eight 256-entry tables fold one 64-bit chunk per loop
iteration, which keeps verification cost at well under a millisecond
per typical row-group payload.
"""

from __future__ import annotations

#: Reversed Castagnoli polynomial (0x1EDC6F41 bit-reflected).
_POLY = 0x82F63B78

#: Number of slicing tables (bytes folded per main-loop iteration).
_SLICES = 8


def _build_tables() -> tuple[tuple[int, ...], ...]:
    first = []
    for i in range(256):
        crc = i
        for _ in range(8):
            crc = (crc >> 1) ^ _POLY if crc & 1 else crc >> 1
        first.append(crc)
    tables = [first]
    for _ in range(1, _SLICES):
        prev = tables[-1]
        tables.append([(c >> 8) ^ first[c & 0xFF] for c in prev])
    return tuple(tuple(t) for t in tables)


_TABLES = _build_tables()


def crc32c(data: bytes | bytearray | memoryview, value: int = 0) -> int:
    """CRC32C of ``data``, optionally continuing from a prior ``value``.

    Matches the standard crc32c convention (e.g. ``crc32c(b"123456789")``
    is ``0xE3069283``); chain calls by passing the previous return value
    to checksum a logical section held in multiple buffers.
    """
    t0, t1, t2, t3, t4, t5, t6, t7 = _TABLES
    crc = (value & 0xFFFFFFFF) ^ 0xFFFFFFFF
    buf = bytes(data)
    length = len(buf)
    aligned = length - (length % _SLICES)
    i = 0
    while i < aligned:
        low = crc ^ (
            buf[i]
            | (buf[i + 1] << 8)
            | (buf[i + 2] << 16)
            | (buf[i + 3] << 24)
        )
        crc = (
            t7[low & 0xFF]
            ^ t6[(low >> 8) & 0xFF]
            ^ t5[(low >> 16) & 0xFF]
            ^ t4[(low >> 24) & 0xFF]
            ^ t3[buf[i + 4]]
            ^ t2[buf[i + 5]]
            ^ t1[buf[i + 6]]
            ^ t0[buf[i + 7]]
        )
        i += _SLICES
    while i < length:
        crc = (crc >> 8) ^ t0[(crc ^ buf[i]) & 0xFF]
        i += 1
    return crc ^ 0xFFFFFFFF
