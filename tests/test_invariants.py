"""Property-style invariant tests across the compression stack."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.alp import alp_encode_vector
from repro.core.compressor import compress, decompress
from repro.core.sampler import (
    find_best_combination,
    first_level_sample,
)
from repro.data import get_dataset
from repro.encodings.bitpack import bit_width_required
from repro.encodings.ffor import ffor_decode, ffor_encode


def bitwise_equal(a, b):
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    return a.shape == b.shape and np.array_equal(
        a.view(np.uint64), b.view(np.uint64)
    )


class TestDeterminism:
    @pytest.mark.parametrize("name", ["City-Temp", "POI-lat", "Gov/26"])
    def test_compression_is_deterministic(self, name):
        values = get_dataset(name, n=20_000)
        first = compress(values)
        second = compress(values)
        assert first.size_bits() == second.size_bits()
        for rg_a, rg_b in zip(first.rowgroups, second.rowgroups, strict=True):
            assert rg_a.scheme == rg_b.scheme
            assert rg_a.first_level.candidates == rg_b.first_level.candidates

    def test_sampler_is_deterministic(self):
        values = get_dataset("Stocks-USA", n=8192)
        a = first_level_sample(values)
        b = first_level_sample(values)
        assert a.candidates == b.candidates
        assert a.use_rd == b.use_rd


class TestFforInvariants:
    @given(
        st.lists(
            st.integers(min_value=-(2**60), max_value=2**60),
            min_size=1,
            max_size=200,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_width_is_minimal(self, xs):
        values = np.array(xs, dtype=np.int64)
        encoded = ffor_encode(values)
        spread = int(values.max()) - int(values.min())
        assert encoded.bit_width == spread.bit_length()

    @given(
        st.lists(
            st.integers(min_value=-(2**62), max_value=2**62),
            min_size=1,
            max_size=100,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_reference_is_minimum(self, xs):
        values = np.array(xs, dtype=np.int64)
        assert ffor_encode(values).reference == int(values.min())

    def test_int64_extremes(self):
        values = np.array(
            [np.iinfo(np.int64).min, np.iinfo(np.int64).max, 0], dtype=np.int64
        )
        assert np.array_equal(ffor_decode(ffor_encode(values)), values)


class TestEncodedVectorInvariants:
    @given(
        st.lists(
            st.floats(
                min_value=-1e6, max_value=1e6,
                allow_nan=False, allow_infinity=False,
            ),
            min_size=1,
            max_size=300,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_exceptions_plus_valid_cover_vector(self, xs):
        values = np.array(xs, dtype=np.float64)
        combo, _ = find_best_combination(values)
        vector = alp_encode_vector(values, combo.exponent, combo.factor)
        assert vector.exception_count <= values.size
        assert vector.ffor.count == values.size
        # Exception positions are unique, sorted and in range.
        positions = vector.exc_positions.astype(np.int64)
        assert np.unique(positions).size == positions.size
        assert (np.diff(positions) > 0).all() if positions.size > 1 else True
        assert (positions < values.size).all() if positions.size else True

    def test_exception_values_are_the_originals(self):
        values = np.round(np.linspace(0, 10, 256), 2)
        values[[3, 77]] = [math.pi, math.e]
        vector = alp_encode_vector(values, 14, 12)
        assert vector.exc_positions.tolist() == [3, 77]
        assert vector.exc_values.tolist() == [math.pi, math.e]


class TestDifficultData:
    def test_subnormal_heavy_column(self):
        rng = np.random.default_rng(0)
        values = rng.integers(1, 1000, 8192).astype(np.float64) * 5e-324
        column = compress(values)
        assert bitwise_equal(decompress(column), values)

    def test_alternating_extremes(self):
        values = np.tile(np.array([1.7e308, 5e-324, -1.7e308]), 2000)
        column = compress(values)
        assert bitwise_equal(decompress(column), values)

    def test_monotone_integers_large(self):
        values = np.arange(1e15, 1e15 + 20_000, dtype=np.float64)
        column = compress(values)
        assert bitwise_equal(decompress(column), values)
        assert column.bits_per_value() < 64

    def test_oscillating_precision(self):
        rng = np.random.default_rng(1)
        base = rng.uniform(0, 100, 20_000)
        values = np.where(
            np.arange(base.size) % 2 == 0,
            np.round(base, 1),
            np.round(base, 9),
        )
        column = compress(values)
        assert bitwise_equal(decompress(column), values)

    def test_invalid_vector_size_rejected(self):
        with pytest.raises(ValueError):
            compress(np.zeros(10), vector_size=70_000)
        with pytest.raises(ValueError):
            compress(np.zeros(10), vector_size=0)


class TestBitWidthRequired:
    @given(st.integers(min_value=0, max_value=2**63 - 1))
    def test_value_fits_in_reported_width(self, x):
        width = bit_width_required(np.array([x], dtype=np.uint64))
        assert x < (1 << width) if width < 64 else True
        if width:
            assert x >= (1 << (width - 1))
