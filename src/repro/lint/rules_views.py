"""RL10 — memoryview escape analysis for the zero-copy read path.

Row-group payloads are ``memoryview`` slices of the reader's (possibly
mmap-backed) file image: valid only while the reader is open.  PR 7's
``BufferLifetimeError`` catches a *close* with live exported views, but
nothing catches a view that quietly outlives its scope — stored into an
object or module container, yielded from a generator after the owning
``with`` reader would resume-and-close around it, or captured by a
closure that runs later.  Every one of those is a use-after-close (or a
refused close) waiting for the right interleaving.

A *view* is a name bound from ``<reader>.rowgroup_payload(...)`` or
``memoryview(...)`` (slices of a view are views: subscripts of a tracked
name count too).  Under ``repro/server`` and ``repro/storage`` this rule
flags:

- **store escapes** — assigning a view (or a slice of one) to a
  ``self.*`` attribute or into a subscript/attribute container, or
  passing it to a ``self.*``-receiver container method
  (``append``/``add``/``insert``/``setdefault``);
- **yield escapes** — ``yield``-ing a view whose reader was opened by a
  ``with`` in the *same* function: the consumer can close the reader
  between resumptions (a reader method yielding views of ``self`` is
  the owner's documented API and is not flagged);
- **closure captures** — a nested ``def``/``lambda`` referencing a view
  name from the enclosing function: it can run after the view dies.

The owner itself (``ColumnFileReader`` binding
``memoryview(self._mmap)`` to ``self._data``) is the one legitimate
store — it carries a justified ``# reprolint: ignore[RL10]``.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.engine import FileContext, Rule, Violation

_CONTAINER_METHODS = frozenset(
    {"add", "append", "appendleft", "insert", "setdefault"}
)


def _is_view_source(call: ast.Call) -> bool:
    func = call.func
    if isinstance(func, ast.Attribute) and func.attr == "rowgroup_payload":
        return True
    if isinstance(func, ast.Name) and func.id == "memoryview":
        return True
    return False


def _base_name(expr: ast.AST) -> str | None:
    """The root name of ``v`` / ``v[i:j]`` — slices of views are views."""
    node = expr
    while isinstance(node, ast.Subscript):
        node = node.value
    if isinstance(node, ast.Name):
        return node.id
    return None


def _with_reader_names(func: ast.AST) -> set[str]:
    """Names bound by ``with ... as r`` items in this function."""
    names: set[str] = set()
    for node in ast.walk(func):
        if isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                if isinstance(item.optional_vars, ast.Name):
                    names.add(item.optional_vars.id)
    return names


class _FunctionViews:
    """Syntactic view tracking for one function body."""

    def __init__(self, func: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        self.func = func
        self.views: dict[str, ast.Call] = {}
        #: view name -> receiver name for ``r.rowgroup_payload`` views.
        self.owners: dict[str, str] = {}
        self.with_names = _with_reader_names(func)
        for node in self._own_nodes():
            if isinstance(node, ast.Assign) and isinstance(
                node.value, ast.Call
            ):
                if len(node.targets) == 1 and isinstance(
                    node.targets[0], ast.Name
                ):
                    call = node.value
                    if _is_view_source(call):
                        name = node.targets[0].id
                        self.views[name] = call
                        if isinstance(call.func, ast.Attribute):
                            owner = call.func.value
                            if isinstance(owner, ast.Name):
                                self.owners[name] = owner.id

    def _own_nodes(self) -> Iterator[ast.AST]:
        """Nodes of this function body, not of nested functions."""
        stack: list[ast.AST] = list(ast.iter_child_nodes(self.func))
        while stack:
            node = stack.pop()
            yield node
            if isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                continue
            stack.extend(ast.iter_child_nodes(node))

    def _is_view_expr(self, expr: ast.AST | None) -> str | None:
        if expr is None:
            return None
        if isinstance(expr, ast.Call) and _is_view_source(expr):
            return "<payload view>"
        name = _base_name(expr)
        if name is not None and name in self.views:
            return name
        return None

    def findings(self) -> Iterator[tuple[ast.AST, str]]:
        yield from self._store_escapes()
        yield from self._yield_escapes()
        yield from self._closure_captures()

    def _store_escapes(self) -> Iterator[tuple[ast.AST, str]]:
        for node in self._own_nodes():
            if isinstance(node, (ast.Assign, ast.AnnAssign)):
                name = self._is_view_expr(node.value)
                if name is None:
                    continue
                targets = (
                    node.targets
                    if isinstance(node, ast.Assign)
                    else [node.target]
                )
                for target in targets:
                    if isinstance(target, (ast.Attribute, ast.Subscript)):
                        yield (
                            node,
                            f"payload view {name!r} stored into "
                            f"{ast.unparse(target)!r} outlives its "
                            "reader's buffer; copy (bytes(...)) or keep "
                            "it function-local",
                        )
            elif isinstance(node, ast.Call):
                func = node.func
                if (
                    isinstance(func, ast.Attribute)
                    and func.attr in _CONTAINER_METHODS
                    and isinstance(func.value, (ast.Attribute, ast.Name))
                ):
                    receiver = func.value
                    is_self_container = (
                        isinstance(receiver, ast.Attribute)
                        and isinstance(receiver.value, ast.Name)
                        and receiver.value.id == "self"
                    )
                    if not is_self_container:
                        continue
                    for arg in node.args:
                        name = self._is_view_expr(arg)
                        if name is not None:
                            yield (
                                node,
                                f"payload view {name!r} stored into "
                                f"self container via .{func.attr}(); it "
                                "outlives the reader's buffer",
                            )

    def _yield_escapes(self) -> Iterator[tuple[ast.AST, str]]:
        for node in self._own_nodes():
            if not isinstance(node, (ast.Yield, ast.YieldFrom)):
                continue
            name = self._is_view_expr(node.value)
            if name is None:
                continue
            owner: str | None = None
            value = node.value
            if (
                isinstance(value, ast.Call)
                and isinstance(value.func, ast.Attribute)
                and isinstance(value.func.value, ast.Name)
            ):
                owner = value.func.value.id
                name = "<payload view>"
            else:
                owner = self.owners.get(name)
            if owner is not None and owner in self.with_names:
                yield (
                    node,
                    f"payload view {name!r} yielded out of the ``with`` "
                    f"scope of reader {owner!r}: the consumer can close "
                    "the reader between resumptions",
                )

    def _closure_captures(self) -> Iterator[tuple[ast.AST, str]]:
        if not self.views:
            return
        for node in self._own_nodes():
            if not isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                continue
            bound = {
                arg.arg
                for arg in (
                    list(node.args.args)
                    + list(node.args.posonlyargs)
                    + list(node.args.kwonlyargs)
                )
            }
            for inner in ast.walk(node):
                if (
                    isinstance(inner, ast.Name)
                    and isinstance(inner.ctx, ast.Load)
                    and inner.id in self.views
                    and inner.id not in bound
                ):
                    label = (
                        f"def {node.name}"
                        if isinstance(
                            node, (ast.FunctionDef, ast.AsyncFunctionDef)
                        )
                        else "lambda"
                    )
                    yield (
                        node,
                        f"payload view {inner.id!r} captured by closure "
                        f"({label}): it can run after the view's reader "
                        "closed; pass the data as an argument or copy",
                    )
                    break


class ViewEscapeRule(Rule):
    """RL10: payload memoryviews must not outlive their reader."""

    code = "RL10"
    name = "view-escape"
    description = (
        "payload memoryviews (rowgroup_payload / memoryview) must not be "
        "stored into self/module containers, yielded past the owning "
        "with-scope, or captured by closures under repro/server and "
        "repro/storage"
    )

    def applies_to(self, ctx: FileContext) -> bool:
        return len(ctx.effective) >= 2 and ctx.effective[0] == "repro" and (
            ctx.effective[1] in ("server", "storage")
        )

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                tracker = _FunctionViews(node)
                for anchor, message in tracker.findings():
                    yield self.violation(ctx, anchor, message)
