"""The table-first repro.api surface: Table, write/read/open_table.

The api contract under test: ``write_table`` persists any
Table/mapping as a v4 file, ``open_table`` opens *any* generation
(v2-v4) as a table with an optional pinned projection/predicate, the
single-column functions stay the one-column special case (``open`` /
``read`` accept one-float-column v4 files transparently), and
``CompressionOptions.column_codecs`` pins per-column codecs.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import api
from repro.storage.tablefile import file_format_version


def _arrays(n=20_000, seed=2):
    rng = np.random.default_rng(seed)
    return {
        "ts": np.cumsum(rng.random(n)),
        "value": np.round(rng.normal(20, 5, n), 2),
        "count": rng.integers(0, 50, n),
        "city": np.array(
            [["BER", "AMS", "PAR"][i % 3] for i in range(n)], dtype=object
        ),
    }


class TestTable:
    def test_from_arrays_infers_schema(self):
        table = api.Table.from_arrays(_arrays(100))
        types = {c.name: c.type for c in table.schema}
        assert types == {
            "ts": "float64",
            "value": "float64",
            "count": "int64",
            "city": "string",
        }
        assert len(table) == 100
        assert not any(c.nullable for c in table.schema)

    def test_validity_marks_nullable(self):
        arrays = _arrays(50)
        mask = np.zeros(50, dtype=bool)
        table = api.Table.from_arrays(arrays, validity={"count": mask})
        assert table.schema.column("count").nullable
        assert not table.schema.column("ts").nullable
        assert np.array_equal(table.column_validity("count"), mask)
        assert table.column_validity("ts").all()

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError, match="values"):
            api.Table.from_arrays(
                {"a": np.zeros(3), "b": np.zeros(4)}
            )

    def test_validity_on_non_nullable_rejected(self):
        schema = api.Schema((api.Column("a"),))
        with pytest.raises(ValueError, match="not nullable"):
            api.Table(
                schema=schema,
                columns={"a": np.zeros(3)},
                validity={"a": np.ones(3, dtype=bool)},
            )


class TestWriteReadTable:
    def test_roundtrip(self, tmp_path):
        arrays = _arrays()
        path = tmp_path / "t.alpc"
        api.write_table(path, arrays)
        assert file_format_version(path) == 4
        table = api.read_table(path)
        assert np.array_equal(table.column("ts"), arrays["ts"])
        assert np.array_equal(table.column("value"), arrays["value"])
        assert np.array_equal(table.column("count"), arrays["count"])
        assert list(table.column("city")) == list(arrays["city"])

    def test_roundtrip_with_validity(self, tmp_path):
        arrays = _arrays(5_000)
        ok = np.random.default_rng(0).random(5_000) > 0.2
        path = tmp_path / "t.alpc"
        api.write_table(path, arrays, validity={"count": ok})
        table = api.read_table(path)
        assert np.array_equal(table.column_validity("count"), ok)
        assert np.array_equal(
            table.column("count")[ok], arrays["count"][ok]
        )

    def test_projection(self, tmp_path):
        arrays = _arrays()
        path = tmp_path / "t.alpc"
        api.write_table(path, arrays)
        table = api.read_table(path, columns=["value", "city"])
        assert table.schema.names == ("value", "city")
        assert np.array_equal(table.column("value"), arrays["value"])

    def test_predicate_scan_matches_numpy(self, tmp_path):
        arrays = _arrays()
        path = tmp_path / "t.alpc"
        api.write_table(path, arrays)
        ts = arrays["ts"]
        lo, hi = float(ts[500]), float(ts[900])
        got = api.read_table(
            path,
            columns=["value"],
            predicate=api.FilterPredicate("ts", low=lo, high=hi),
        )
        want = arrays["value"][(ts >= lo) & (ts <= hi)]
        assert np.array_equal(got.column("value"), want)

    def test_open_table_pins_projection_and_predicate(self, tmp_path):
        arrays = _arrays()
        path = tmp_path / "t.alpc"
        api.write_table(path, arrays)
        ts = arrays["ts"]
        lo, hi = float(ts[100]), float(ts[300])
        with api.open_table(
            path,
            columns=["value"],
            predicate=api.FilterPredicate("ts", low=lo, high=hi),
        ) as handle:
            assert handle.schema.names == ("value",)
            assert handle.format_version == 4
            got = handle.read()
            want = arrays["value"][(ts >= lo) & (ts <= hi)]
            assert np.array_equal(got.column("value"), want)
            # scan() arguments override the pinned ones.
            full = handle.scan(columns=["ts", "value"])
            assert full.schema.names == ("ts", "value")

    def test_open_table_unknown_column_rejected(self, tmp_path):
        path = tmp_path / "t.alpc"
        api.write_table(path, _arrays(100))
        with pytest.raises(KeyError):
            api.open_table(path, columns=["nope"])

    def test_legacy_v3_as_table(self, tmp_path):
        values = np.round(np.random.default_rng(3).normal(0, 1, 4000), 2)
        path = tmp_path / "col.alpc"
        api.write(path, values)
        table = api.read_table(path)
        assert table.schema.names == ("col",)
        assert np.array_equal(table.column("col"), values)


class TestSingleColumnWrappers:
    def test_open_dispatches_one_float_column_v4(self, tmp_path):
        values = np.round(np.random.default_rng(5).normal(0, 1, 4000), 2)
        path = tmp_path / "v.alpc"
        api.write_table(path, {"v": values})
        reader = api.open(path)
        try:
            assert np.array_equal(reader.read_all(), values)
            assert reader.format_version == 4
        finally:
            reader.close()
        assert np.array_equal(api.read(path), values)

    def test_open_rejects_multi_column_v4(self, tmp_path):
        path = tmp_path / "t.alpc"
        api.write_table(path, _arrays(100))
        with pytest.raises(ValueError, match="open_table"):
            api.open(path)

    def test_write_stays_v3(self, tmp_path):
        path = tmp_path / "c.alpc"
        api.write(path, np.zeros(100))
        assert file_format_version(path) == 3


class TestColumnCodecs:
    def test_codec_override_roundtrips(self, tmp_path):
        arrays = _arrays(5_000)
        path = tmp_path / "t.alpc"
        api.write_table(
            path,
            arrays,
            api.CompressionOptions(
                column_codecs={"count": "delta", "value": "alp"}
            ),
        )
        table = api.read_table(path)
        assert np.array_equal(table.column("count"), arrays["count"])
        assert np.array_equal(table.column("value"), arrays["value"])

    def test_unknown_codec_rejected(self):
        with pytest.raises(ValueError, match="column_codecs"):
            api.CompressionOptions(column_codecs={"x": "zstd"})

    def test_normalized_and_hashable(self):
        a = api.CompressionOptions(
            column_codecs={"b": "delta", "a": "alp"}
        )
        b = api.CompressionOptions(
            column_codecs=(("a", "alp"), ("b", "delta"))
        )
        assert a == b
        assert hash(a) == hash(b)

    def test_unknown_column_rejected_at_write(self, tmp_path):
        with pytest.raises(KeyError):
            api.write_table(
                tmp_path / "t.alpc",
                {"a": np.zeros(10)},
                api.CompressionOptions(column_codecs={"nope": "alp"}),
            )

    def test_type_mismatched_codec_rejected_at_write(self, tmp_path):
        with pytest.raises(ValueError):
            api.write_table(
                tmp_path / "t.alpc",
                {"a": np.zeros(10)},  # float column
                api.CompressionOptions(column_codecs={"a": "dict"}),
            )


class TestVerifyRepair:
    def test_verify_v4(self, tmp_path):
        path = tmp_path / "t.alpc"
        api.write_table(path, _arrays(2_000))
        report = api.verify(path)
        assert report.ok
        assert report.format_version == 4

    def test_repair_v4(self, tmp_path):
        path = tmp_path / "t.alpc"
        api.write_table(path, _arrays(2_000))
        fixed = tmp_path / "fixed.alpc"
        report = api.repair(path, fixed)
        assert report.rowgroups_dropped == 0
        assert api.verify(fixed).ok
