"""The repo must stay reprolint-clean, and the name registry truthful.

These tests pin the clean state reached in this PR: any new violation in
``src/``, ``tests/`` or ``benchmarks/`` fails the suite (same signal as
the ``lint-static`` CI job, but runnable offline), and the observability
name registry is cross-checked against both the code and the docs.
"""

from __future__ import annotations

import ast
import json
from pathlib import Path

from repro.lint.engine import lint_paths
from repro.lint.names import (
    ALL_METRIC_NAMES,
    COUNTER_NAMES,
    GAUGE_NAMES,
    SPAN_NAMES,
)

ROOT = Path(__file__).resolve().parents[1]


def test_repo_lints_clean():
    targets = [ROOT / name for name in ("src", "tests", "benchmarks")]
    violations = lint_paths([p for p in targets if p.exists()], root=ROOT)
    rendered = "\n".join(v.render() for v in violations)
    assert violations == [], f"reprolint violations:\n{rendered}"


def test_server_package_is_rl6_clean():
    # The serving layer's core contract — the event loop never blocks —
    # is pinned statically: RL6 must be registered and find nothing in
    # the real server package (the seeded violations live in fixtures).
    from repro.lint import ALL_RULES, AsyncBlockingRule

    assert any(isinstance(rule, AsyncBlockingRule) for rule in ALL_RULES)
    violations = lint_paths(
        [ROOT / "src" / "repro" / "server"],
        root=ROOT,
        rules=[AsyncBlockingRule()],
    )
    rendered = "\n".join(v.render() for v in violations)
    assert violations == [], f"blocking calls in coroutines:\n{rendered}"


def test_server_and_storage_are_concurrency_clean():
    # The concurrency/ownership contracts added with RL8–RL10 must find
    # nothing real (the seeded violations live in fixtures; the two
    # owner-stores in columnfile carry justified suppressions).
    from repro.lint import (
        LockDisciplineRule,
        ResourceLinearityRule,
        ViewEscapeRule,
    )

    violations = lint_paths(
        [ROOT / "src" / "repro"],
        root=ROOT,
        rules=[LockDisciplineRule(), ResourceLinearityRule(), ViewEscapeRule()],
    )
    rendered = "\n".join(v.render() for v in violations)
    assert violations == [], f"concurrency/ownership violations:\n{rendered}"


def test_cli_json_output_matches_schema(capsys):
    """Full structural validation of the machine-readable output.

    The envelope is versioned (``schema_version``) so downstream
    tooling can detect shape changes; this test is the schema's
    executable definition.
    """
    from repro.lint import ALL_RULES
    from repro.lint.cli import JSON_SCHEMA_VERSION, main as lint_main

    code = lint_main(
        [
            str(ROOT / "tests" / "lint_fixtures"),
            "--root",
            str(ROOT),
            "--format",
            "json",
        ]
    )
    assert code == 1
    payload = json.loads(capsys.readouterr().out)

    assert isinstance(payload, dict)
    assert set(payload) == {"schema_version", "rules", "violations"}
    assert payload["schema_version"] == JSON_SCHEMA_VERSION == 1

    known_codes = sorted(rule.code for rule in ALL_RULES)
    assert payload["rules"] == known_codes

    assert isinstance(payload["violations"], list) and payload["violations"]
    for entry in payload["violations"]:
        assert set(entry) == {"rule", "path", "line", "col", "message"}
        assert entry["rule"] in known_codes
        assert isinstance(entry["path"], str) and entry["path"]
        assert isinstance(entry["line"], int) and entry["line"] >= 1
        assert isinstance(entry["col"], int) and entry["col"] >= 0
        assert isinstance(entry["message"], str) and entry["message"]
    # Deterministic ordering: path, then line, col, rule.
    keys = [
        (e["path"], e["line"], e["col"], e["rule"])
        for e in payload["violations"]
    ]
    assert keys == sorted(keys)


def _scan_used_names() -> dict[str, set[str]]:
    used: dict[str, set[str]] = {"span": set(), "counter": set(), "gauge": set()}
    kinds = {"span": "span", "counter_add": "counter", "gauge_set": "gauge"}
    for path in sorted((ROOT / "src" / "repro").rglob("*.py")):
        tree = ast.parse(path.read_text(encoding="utf-8"))
        for node in ast.walk(tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in kinds
                and node.args
            ):
                continue
            arg = node.args[0]
            literals = []
            if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
                literals = [arg.value]
            elif isinstance(arg, ast.IfExp):
                literals = [
                    part.value
                    for part in (arg.body, arg.orelse)
                    if isinstance(part, ast.Constant)
                    and isinstance(part.value, str)
                ]
            used[kinds[node.func.attr]].update(literals)
    return used


def test_registry_matches_code():
    used = _scan_used_names()
    assert used["span"] == set(SPAN_NAMES)
    assert used["counter"] == set(COUNTER_NAMES)
    assert used["gauge"] == set(GAUGE_NAMES)


def test_integrity_names_registered():
    # The storage-integrity metrics (format v3) must stay registered —
    # the verify CLI and the degraded-scan report depend on them.
    assert "columnfile.verify" in SPAN_NAMES
    for name in (
        "columnfile.checksum_failures",
        "columnfile.rowgroups_quarantined",
        "columnfile.values_quarantined",
    ):
        assert name in COUNTER_NAMES


def test_registry_names_are_documented():
    doc = (ROOT / "docs" / "OBSERVABILITY.md").read_text(encoding="utf-8")
    missing = sorted(name for name in ALL_METRIC_NAMES if name not in doc)
    assert missing == [], f"undocumented metric names: {missing}"
