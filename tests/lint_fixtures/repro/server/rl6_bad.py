"""Seeded RL6 violations: blocking calls inside server coroutines.

Scoped as ``repro/server/rl6_bad.py`` via the fixture-prefix stripping,
so the async-blocking rule applies exactly as it would to real serving
code.  Every ``async def`` here stalls the event loop in a way RL6 must
flag; the sync helpers at the bottom are the allowed shapes.
"""

import socket
import time

from repro import api


async def handle_sleep() -> None:
    time.sleep(0.1)  # RL6: blocks every connection at once


async def handle_file(path: str) -> bytes:
    with open(path, "rb") as fh:  # RL6: blocking file I/O in a coroutine
        return fh.read()


async def handle_socket(host: str) -> None:
    sock = socket.create_connection((host, 80))  # RL6: blocking connect
    sock.close()


async def handle_codec(values) -> object:
    return api.compress(values)  # RL6: codec work belongs in the pool


async def allowed_shapes(values) -> None:
    # Defining a sync helper inside a coroutine is fine — only calling
    # blocking work from the coroutine body stalls the loop.
    def worker() -> object:
        time.sleep(0.01)
        return api.compress(values)

    _ = worker


def sync_is_fine(values) -> object:
    time.sleep(0.01)
    return api.compress(values)
