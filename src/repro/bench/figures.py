"""ASCII rendering of the paper's figures (no plotting deps offline).

The benches regenerate the *data* behind every figure; these helpers
render it so the shape is visible directly in the pytest output and the
persisted result files:

- :func:`ascii_scatter` — Figure 1 / Figure 4-style scatter plots, one
  glyph per series, optional log axes;
- :func:`ascii_series` — Figure 5-style line series over a shared x
  axis.
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence


def _transform(value: float, log: bool) -> float:
    if log:
        return math.log10(max(value, 1e-12))
    return value


def ascii_scatter(
    series: Mapping[str, Sequence[tuple[float, float]]],
    x_label: str,
    y_label: str,
    width: int = 64,
    height: int = 20,
    log_x: bool = False,
    log_y: bool = False,
) -> str:
    """Render named point series into a character grid.

    Each series gets the first letter of its name (upper-cased, then
    lower-cased on collision); overlapping points from different series
    show ``*``.
    """
    points = [
        (name, x, y)
        for name, pts in series.items()
        for x, y in pts
        if math.isfinite(x) and math.isfinite(y)
    ]
    if not points:
        return "(no points)"

    xs = [_transform(x, log_x) for _, x, _ in points]
    ys = [_transform(y, log_y) for _, _, y in points]
    x_min, x_max = min(xs), max(xs)
    y_min, y_max = min(ys), max(ys)
    x_span = (x_max - x_min) or 1.0
    y_span = (y_max - y_min) or 1.0

    glyphs: dict[str, str] = {}
    used: set[str] = set()
    for name in series:
        for candidate in (name[0].upper(), name[0].lower(), "+", "x", "o"):
            if candidate not in used:
                glyphs[name] = candidate
                used.add(candidate)
                break
        else:
            glyphs[name] = "?"

    grid = [[" "] * width for _ in range(height)]
    for name, x, y in points:
        col = round((_transform(x, log_x) - x_min) / x_span * (width - 1))
        row = height - 1 - round(
            (_transform(y, log_y) - y_min) / y_span * (height - 1)
        )
        cell = grid[row][col]
        grid[row][col] = glyphs[name] if cell in (" ", glyphs[name]) else "*"

    lines = [
        f"y: {y_label}" + (" (log)" if log_y else ""),
    ]
    for row in grid:
        lines.append("  |" + "".join(row))
    lines.append("  +" + "-" * width)
    lines.append(f"   x: {x_label}" + (" (log)" if log_x else ""))
    legend = "   " + "  ".join(
        f"{glyphs[name]}={name}" for name in series
    )
    lines.append(legend)
    return "\n".join(lines)


def ascii_series(
    series: Mapping[str, Sequence[tuple[float, float]]],
    x_label: str,
    y_label: str,
    width: int = 64,
    height: int = 16,
) -> str:
    """Render line series (points only; readers connect the dots)."""
    return ascii_scatter(
        series, x_label=x_label, y_label=y_label, width=width, height=height
    )
