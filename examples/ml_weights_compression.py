"""Lossless compression of ML model weights with ALP_rd-32 (§4.4).

Trained float32 weights have fully random mantissas — no decimal origin
to exploit — but their sign/exponent/top-mantissa front bits have low
variance.  ALP_rd-32 dictionary-encodes those front bits and bit-packs
the rest, recovering every weight bit-exactly.

Run:  python examples/ml_weights_compression.py
"""

import zlib

import numpy as np

from repro.core.float32 import compress_f32, decompress_f32
from repro.data import MODELS, get_model_weights

print(f"{'model':14s} {'type':20s} {'params':>9s} "
      f"{'alprd32':>8s} {'zlib':>6s} {'saved':>6s}")
for name, spec in MODELS.items():
    weights = get_model_weights(name)
    column = compress_f32(weights)
    assert column.scheme == "alprd", "weights should trigger the rd path"

    restored = decompress_f32(column)
    assert np.array_equal(
        restored.view(np.uint32), weights.view(np.uint32)
    ), "weights must round-trip bit-exactly"

    alprd_bits = column.bits_per_value()
    zlib_bits = len(zlib.compress(weights.tobytes(), 6)) * 8 / weights.size
    saved = 1.0 - alprd_bits / 32.0
    print(f"{name:14s} {spec.model_type:20s} {spec.synth_params:>9,} "
          f"{alprd_bits:8.1f} {zlib_bits:6.1f} {saved:6.1%}")

print("\nbits per value, uncompressed = 32; every round-trip verified "
      "bit-exact.")
print("Unlike quantization, this is lossless: the model is unchanged.")
